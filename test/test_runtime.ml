(* The cooperative runtime: scheduler (spawn/run/interleaving/crash) and
   the thread-level memory primitives. *)

module F = Fabric
module S = Runtime.Sched
module O = Runtime.Ops

let mk_fab ?(n = 2) ?(volatile = false) () =
  F.uniform ~seed:5 ~evict_prob:0.0 ~volatile n

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let test_run_to_completion () =
  let fab = mk_fab () in
  let s = S.create fab in
  let hits = ref 0 in
  for _ = 1 to 5 do
    ignore (S.spawn s ~machine:0 ~name:"t" (fun _ -> incr hits))
  done;
  ignore (S.run s);
  Alcotest.(check int) "all threads ran" 5 !hits;
  Alcotest.(check int) "none left" 0 (S.alive s)

let test_tids_unique_and_fresh () =
  let fab = mk_fab () in
  let s = S.create fab in
  let t1 = S.spawn s ~machine:0 ~name:"a" (fun _ -> ()) in
  let t2 = S.spawn s ~machine:1 ~name:"b" (fun _ -> ()) in
  ignore (S.run s);
  let t3 = S.spawn s ~machine:0 ~name:"c" (fun _ -> ()) in
  Alcotest.(check bool) "distinct" true (t1 <> t2 && t2 <> t3 && t1 <> t3);
  Alcotest.(check bool) "monotone (never reused)" true (t3 > t2 && t2 > t1)

let test_interleaving_happens () =
  (* two threads alternately appending their id: with yields between
     appends, a seeded scheduler must interleave them (not run one to
     completion first) for at least one seed *)
  let interleaved seed =
    let fab = mk_fab () in
    let s = S.create ~seed fab in
    let order = ref [] in
    for id = 0 to 1 do
      ignore
        (S.spawn s ~machine:0 ~name:"t" (fun ctx ->
             for _ = 1 to 4 do
               order := id :: !order;
               S.yield ctx
             done))
    done;
    ignore (S.run s);
    let l = List.rev !order in
    (* count alternations *)
    let rec alternations = function
      | a :: (b :: _ as rest) ->
          (if a <> b then 1 else 0) + alternations rest
      | _ -> 0
    in
    alternations l > 1
  in
  Alcotest.(check bool) "some seed interleaves" true
    (List.exists interleaved [ 1; 2; 3; 4; 5 ])

let test_determinism () =
  (* same seed -> same interleaving *)
  let trace seed =
    let fab = mk_fab () in
    let s = S.create ~seed fab in
    let order = ref [] in
    for id = 0 to 2 do
      ignore
        (S.spawn s ~machine:0 ~name:"t" (fun ctx ->
             for _ = 1 to 3 do
               order := id :: !order;
               S.yield ctx
             done))
    done;
    ignore (S.run s);
    List.rev !order
  in
  Alcotest.(check (list int)) "reproducible" (trace 11) (trace 11);
  Alcotest.(check bool) "seed matters (some pair differs)" true
    (trace 11 <> trace 12 || trace 11 <> trace 13)

let test_crash_kills_threads () =
  let fab = mk_fab () in
  let s = S.create fab in
  let m0_steps = ref 0 and m1_steps = ref 0 in
  ignore
    (S.spawn s ~machine:0 ~name:"victim" (fun ctx ->
         for _ = 1 to 1000 do
           incr m0_steps;
           S.yield ctx
         done));
  ignore
    (S.spawn s ~machine:1 ~name:"survivor" (fun ctx ->
         for _ = 1 to 10 do
           incr m1_steps;
           S.yield ctx
         done));
  S.at_step s 5 (S.Crash 0);
  ignore (S.run s);
  Alcotest.(check bool) "victim died early" true (!m0_steps < 1000);
  Alcotest.(check int) "survivor finished" 10 !m1_steps;
  Alcotest.(check bool) "machine down" false (S.machine_is_up s 0)

let test_spawn_on_crashed_rejected () =
  let fab = mk_fab () in
  let s = S.create fab in
  S.crash_now s 0;
  Alcotest.check_raises "rejected"
    (Invalid_argument "Sched.spawn: machine 0 is crashed") (fun () ->
      ignore (S.spawn s ~machine:0 ~name:"t" (fun _ -> ())));
  S.restart s 0;
  ignore (S.spawn s ~machine:0 ~name:"t" (fun _ -> ()));
  ignore (S.run s)

let test_plan_call_and_restart () =
  let fab = mk_fab () in
  let s = S.create fab in
  let post_recovery = ref false in
  ignore
    (S.spawn s ~machine:0 ~name:"looper" (fun ctx ->
         for _ = 1 to 20 do
           S.yield ctx
         done));
  S.at_step s 3 (S.Crash 1);
  S.at_step s 6
    (S.Call
       (fun s ->
         S.restart s 1;
         ignore
           (S.spawn s ~machine:1 ~name:"recovered" (fun _ ->
                post_recovery := true))));
  ignore (S.run s);
  Alcotest.(check bool) "recovery thread ran" true !post_recovery

let test_plan_fires_when_idle () =
  (* plan actions scheduled beyond the last runnable step still fire *)
  let fab = mk_fab () in
  let s = S.create fab in
  let fired = ref false in
  ignore (S.spawn s ~machine:0 ~name:"short" (fun _ -> ()));
  S.at_step s 1000 (S.Call (fun _ -> fired := true));
  ignore (S.run s);
  Alcotest.(check bool) "fired" true !fired

(* ------------------------------------------------------------------ *)
(* Crash/restart edges                                                 *)
(* ------------------------------------------------------------------ *)

let test_restart_at_crash_step () =
  (* same-step crash + restart: at_step runs same-step actions in
     registration order, so the machine ends the step up again and a
     recovery thread spawned by the restart callback runs *)
  let fab = mk_fab () in
  let s = S.create fab in
  let recovered = ref false in
  ignore
    (S.spawn s ~machine:0 ~name:"looper" (fun ctx ->
         for _ = 1 to 20 do
           S.yield ctx
         done));
  S.at_step s 4 (S.Crash 1);
  S.at_step s 4
    (S.Call
       (fun s ->
         S.restart s 1;
         ignore
           (S.spawn s ~machine:1 ~name:"recovered" (fun _ ->
                recovered := true))));
  ignore (S.run s);
  Alcotest.(check bool) "machine up" true (S.machine_is_up s 1);
  Alcotest.(check bool) "recovery ran" true !recovered

let test_double_crash_same_machine () =
  (* a second crash of an already-crashed machine is a no-op (no double
     kill, no duplicated crash list entry); a crash-restart-crash cycle
     leaves the machine down *)
  let fab = mk_fab () in
  let s = S.create fab in
  S.crash_now s 0;
  S.crash_now s 0;
  Alcotest.(check bool) "down" false (S.machine_is_up s 0);
  S.restart s 0;
  Alcotest.(check bool) "one restart suffices" true (S.machine_is_up s 0);
  S.crash_now s 0;
  Alcotest.(check bool) "down again" false (S.machine_is_up s 0)

let test_volatile_home_crash_wipes_memory () =
  (* a volatile machine's memory does not survive its crash, even
     flushed data *)
  let fab = mk_fab ~volatile:true () in
  let s = S.create fab in
  let x = ref 0 in
  ignore
    (S.spawn s ~machine:1 ~name:"writer" (fun ctx ->
         x := O.alloc ctx ~owner:1;
         O.mstore ctx !x 7));
  ignore (S.run s);
  Alcotest.(check int) "written" 7 (F.load fab 0 !x);
  let s2 = S.create fab in
  S.crash_now s2 1;
  S.restart s2 1;
  Alcotest.(check int) "volatile memory wiped" 0 (F.load fab 0 !x)

let test_crash_before_init_creates_object () =
  (* a crash plan that fells the home machine before the init thread has
     created the object: the run must complete (no spawn on a dead
     machine, no recovery of a non-existent instance), recording just
     the crash *)
  let c =
    { (Harness.Workload.default_config Harness.Objects.Register
         Flit.Registry.simple)
      with
      Harness.Workload.crashes =
        [ { Harness.Workload.at = 0; machine = 2; restart_at = 0;
            recovery_threads = 1; recovery_ops = 2 } ];
    }
  in
  let r = Harness.Workload.run c in
  Alcotest.(check int) "one crash recorded" 1
    (Lincheck.History.crash_count r.Harness.Workload.history);
  Alcotest.(check int) "no operations" 0
    (List.length (Lincheck.History.ops r.Harness.Workload.history));
  let v = Harness.Workload.check c in
  Alcotest.(check bool) "vacuously durable" true v.Lincheck.Durable.durable

let test_crash_before_init_worker_machines () =
  (* fell a worker machine (not the home) before init spawns workers:
     the init thread must skip it rather than die in Sched.spawn *)
  let c =
    { (Harness.Workload.default_config Harness.Objects.Counter
         Flit.Registry.simple)
      with
      Harness.Workload.crashes =
        [ { Harness.Workload.at = 0; machine = 0; restart_at = 200;
            recovery_threads = 0; recovery_ops = 0 } ];
    }
  in
  let r = Harness.Workload.run c in
  let ops = Lincheck.History.ops r.Harness.Workload.history in
  (* only the surviving worker (machine 1) ran its 3 ops *)
  Alcotest.(check int) "one worker's ops" c.Harness.Workload.ops_per_thread
    (List.length ops);
  let v = Harness.Workload.check c in
  Alcotest.(check bool) "durable" true v.Lincheck.Durable.durable

(* ------------------------------------------------------------------ *)
(* Ops                                                                 *)
(* ------------------------------------------------------------------ *)

let run_thread ?(fab = mk_fab ()) ?(machine = 0) body =
  let s = S.create fab in
  let result = ref None in
  ignore (S.spawn s ~machine ~name:"t" (fun ctx -> result := Some (body ctx)));
  ignore (S.run s);
  (fab, Option.get !result)

let test_ops_store_load () =
  let _, v =
    run_thread (fun ctx ->
        let x = O.alloc ctx ~owner:1 in
        O.lstore ctx x 7;
        O.load ctx x)
  in
  Alcotest.(check int) "roundtrip" 7 v

let test_ops_store_kinds () =
  let fab, () =
    run_thread (fun ctx ->
        let x = O.alloc ctx ~owner:1 in
        let y = O.alloc ctx ~owner:1 in
        O.store ctx Cxl0.Label.R x 1;
        O.store ctx Cxl0.Label.M y 2)
  in
  let s = F.stats fab in
  Alcotest.(check int) "rstore" 1 s.F.Stats.rstores;
  Alcotest.(check int) "mstore" 1 s.F.Stats.mstores

let test_ops_flush_persists () =
  let fab, x =
    run_thread (fun ctx ->
        let x = O.alloc ctx ~owner:1 in
        O.lstore ctx x 7;
        O.rflush ctx x;
        x)
  in
  F.crash fab 1;
  Alcotest.(check int) "survived" 7 (F.load fab 0 x)

let test_ops_faa_cas () =
  let _, (old1, old2, casok, final) =
    run_thread (fun ctx ->
        let x = O.alloc ctx ~owner:1 in
        let a = O.faa ctx x 3 in
        let b = O.faa ctx x 4 in
        let ok = O.cas ctx x ~expected:7 ~desired:100 ~kind:Cxl0.Label.R in
        (a, b, ok, O.load ctx x))
  in
  Alcotest.(check int) "faa old 1" 0 old1;
  Alcotest.(check int) "faa old 2" 3 old2;
  Alcotest.(check bool) "cas ok" true casok;
  Alcotest.(check int) "final" 100 final

let test_ops_alloc_local () =
  let fab, x = run_thread ~machine:1 (fun ctx -> O.alloc_local ctx) in
  Alcotest.(check int) "owned by caller's machine" 1 (F.owner fab x)

let test_concurrent_counter_with_faa () =
  (* n threads x k increments via FAA = n*k, under arbitrary scheduling *)
  let fab = mk_fab ~n:3 () in
  let s = S.create ~seed:99 fab in
  let x = F.alloc fab ~owner:2 in
  for m = 0 to 2 do
    ignore
      (S.spawn s ~machine:m ~name:"inc" (fun ctx ->
           for _ = 1 to 10 do
             ignore (O.faa ctx x 1)
           done))
  done;
  ignore (S.run s);
  Alcotest.(check int) "30 increments" 30 (F.load fab 0 x)

(* ------------------------------------------------------------------ *)
(* Retry policy                                                        *)
(* ------------------------------------------------------------------ *)

let faulty_fab ?(nack = 0.0) () =
  let p = F.Faults.plan ~seed:11 () in
  if nack > 0.0 then
    F.Faults.degrade_link p 0 1 ~nack_prob:nack ~delay_prob:0.0
      ~delay_cycles:0;
  F.uniform ~seed:5 ~evict_prob:0.0 ~faults:p 2

let test_retry_absorbs_transient () =
  let fab = faulty_fab ~nack:0.5 () in
  let x = F.alloc fab ~owner:1 in
  let _, oks =
    run_thread ~fab (fun ctx ->
        let oks = ref 0 in
        (* rstore always crosses to the owner, so every iteration rolls
           the NACK dice (a load would cache the line and go local) *)
        for v = 1 to 20 do
          match O.rstore_result ctx x v with
          | Ok () -> incr oks
          | Error _ -> ()
        done;
        !oks)
  in
  let s = F.stats fab in
  Alcotest.(check bool) "most stores completed" true (oks >= 15);
  Alcotest.(check bool) "retries happened" true (s.F.Stats.retries > 0);
  Alcotest.(check bool) "faults recorded" true (s.F.Stats.faults_injected > 0)

let test_retry_exhaustion_raises () =
  let fab = faulty_fab ~nack:1.0 () in
  let x = F.alloc fab ~owner:1 in
  let _, raised =
    run_thread ~fab (fun ctx ->
        match O.load ctx x with
        | _ -> false
        | exception O.Fault (F.Faults.Nack _) -> true)
  in
  Alcotest.(check bool) "persistent NACKs surface as Ops.Fault" true raised;
  let s = F.stats fab in
  (* the default policy: 1 attempt + 4 retries, every one NACKed *)
  Alcotest.(check int) "all retries spent"
    F.Faults.default_retry.F.Faults.retries s.F.Stats.retries;
  Alcotest.(check int) "each attempt counted a fault"
    (F.Faults.default_retry.F.Faults.retries + 1)
    s.F.Stats.faults_injected

let test_retry_result_no_exception () =
  let fab = faulty_fab ~nack:1.0 () in
  let x = F.alloc fab ~owner:1 in
  let _, r = run_thread ~fab (fun ctx -> O.load_result ctx x) in
  match r with
  | Error (F.Faults.Nack { from_m = 0; to_m = 1 }) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Error (Nack 0->1)"

(* ------------------------------------------------------------------ *)
(* Restart                                                             *)
(* ------------------------------------------------------------------ *)

let test_restart_nv_contents_survive () =
  let fab = mk_fab () in
  let x = F.alloc fab ~owner:1 in
  F.lstore fab 0 x 7;
  F.rflush fab 0 x;
  let s = S.create fab in
  S.crash_now s 1;
  S.restart s 1;
  Alcotest.(check bool) "machine back up" true (S.machine_is_up s 1);
  let got = ref (-1) in
  ignore (S.spawn s ~machine:1 ~name:"r" (fun ctx -> got := O.load ctx x));
  ignore (S.run s);
  Alcotest.(check int) "NV contents survive crash+restart" 7 !got

let test_restart_volatile_rezeroed () =
  let fab = mk_fab ~volatile:true () in
  let x = F.alloc fab ~owner:1 in
  F.mstore fab 1 x 7;
  let s = S.create fab in
  S.crash_now s 1;
  S.restart s 1;
  let got = ref (-1) in
  ignore (S.spawn s ~machine:1 ~name:"r" (fun ctx -> got := O.load ctx x));
  ignore (S.run s);
  Alcotest.(check int) "volatile memory re-zeroed" 0 !got

let test_restarted_machine_runs_recovery () =
  let fab = mk_fab () in
  let s = S.create fab in
  let x = F.alloc fab ~owner:1 in
  let recovered = ref (-1) in
  ignore
    (S.spawn s ~machine:0 ~name:"w" (fun ctx ->
         O.lstore ctx x 1;
         O.rflush ctx x;
         O.lstore ctx x 2));
  S.at_step s 6 (S.Call (fun s -> S.crash_now s 1));
  S.at_step s 8
    (S.Call
       (fun s ->
         S.restart s 1;
         ignore
           (S.spawn s ~machine:1 ~name:"recover" (fun ctx ->
                recovered := O.load ctx x))));
  ignore (S.run s);
  (* the recovery thread ran on the restarted machine and observed a
     coherent value (which exact store is visible depends on where the
     crash landed) *)
  Alcotest.(check bool) "recovery thread ran" true
    (!recovered = 0 || !recovered = 1 || !recovered = 2)

(* ------------------------------------------------------------------ *)
(* Root directory                                                      *)
(* ------------------------------------------------------------------ *)

module RD = Runtime.Rootdir

let test_rootdir_register_lookup () =
  let _, () =
    run_thread (fun ctx ->
        let dir = RD.create ctx ~home:1 () in
        let a = O.alloc ctx ~owner:1 in
        let b = O.alloc ctx ~owner:1 in
        Alcotest.(check bool) "register a" true (RD.register dir ctx ~name:"a" a);
        Alcotest.(check bool) "register b" true (RD.register dir ctx ~name:"b" b);
        Alcotest.(check (option int)) "lookup a" (Some a)
          (RD.lookup dir ctx ~name:"a");
        Alcotest.(check (option int)) "lookup b" (Some b)
          (RD.lookup dir ctx ~name:"b");
        Alcotest.(check (option int)) "lookup missing" None
          (RD.lookup dir ctx ~name:"zzz");
        Alcotest.(check int) "two names" 2 (RD.names_used dir ctx))
  in
  ()

let test_rootdir_overwrite () =
  let _, () =
    run_thread (fun ctx ->
        let dir = RD.create ctx ~home:1 () in
        let a = O.alloc ctx ~owner:1 in
        let a' = O.alloc ctx ~owner:1 in
        ignore (RD.register dir ctx ~name:"root" a);
        ignore (RD.register dir ctx ~name:"root" a');
        Alcotest.(check (option int)) "rebinding wins" (Some a')
          (RD.lookup dir ctx ~name:"root");
        Alcotest.(check int) "still one slot" 1 (RD.names_used dir ctx))
  in
  ()

let test_rootdir_full () =
  let _, () =
    run_thread (fun ctx ->
        let dir = RD.create ctx ~slots:2 ~home:1 () in
        let x = O.alloc ctx ~owner:1 in
        Alcotest.(check bool) "1" true (RD.register dir ctx ~name:"a" x);
        Alcotest.(check bool) "2" true (RD.register dir ctx ~name:"b" x);
        Alcotest.(check bool) "full" false (RD.register dir ctx ~name:"c" x))
  in
  ()

let test_rootdir_survives_crash_and_attach () =
  let fab = mk_fab () in
  let s = S.create fab in
  let loc = ref 0 in
  ignore
    (S.spawn s ~machine:1 ~name:"init" (fun ctx ->
         let dir = RD.create ctx ~home:1 () in
         loc := O.alloc ctx ~owner:1;
         O.mstore ctx !loc 77;
         ignore (RD.register dir ctx ~name:"data" !loc)));
  ignore (S.run s);
  F.crash fab 1;
  (* recovery: rediscover the directory by convention, then the data *)
  let s2 = S.create fab in
  ignore
    (S.spawn s2 ~machine:0 ~name:"recover" (fun ctx ->
         let dir = RD.attach fab ~home:1 () in
         match RD.lookup dir ctx ~name:"data" with
         | Some l ->
             Alcotest.(check int) "registered loc recovered" !loc l;
             Alcotest.(check int) "data intact" 77 (O.load ctx l)
         | None -> Alcotest.fail "registration lost"));
  ignore (S.run s2)

let test_rootdir_concurrent_registration () =
  let fab = mk_fab ~n:3 () in
  let s = S.create ~seed:13 fab in
  let dir = ref None in
  ignore
    (S.spawn s ~machine:2 ~name:"init" (fun ctx ->
         dir := Some (RD.create ctx ~home:2 ());
         for m = 0 to 1 do
           ignore
             (S.spawn s ~machine:m ~name:"reg" (fun ctx ->
                  let d = Option.get !dir in
                  let x = O.alloc ctx ~owner:2 in
                  Alcotest.(check bool) "registered" true
                    (RD.register d ctx ~name:(Printf.sprintf "n%d" ctx.S.tid) x)))
         done));
  ignore (S.run s);
  let s2 = S.create fab in
  ignore
    (S.spawn s2 ~machine:0 ~name:"check" (fun ctx ->
         Alcotest.(check int) "both slots claimed" 2
           (RD.names_used (Option.get !dir) ctx)));
  ignore (S.run s2)

let () =
  Alcotest.run "runtime"
    [
      ( "sched",
        [
          Alcotest.test_case "run to completion" `Quick test_run_to_completion;
          Alcotest.test_case "fresh tids" `Quick test_tids_unique_and_fresh;
          Alcotest.test_case "interleaving" `Quick test_interleaving_happens;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "crash kills threads" `Quick
            test_crash_kills_threads;
          Alcotest.test_case "spawn on crashed" `Quick
            test_spawn_on_crashed_rejected;
          Alcotest.test_case "restart + recovery" `Quick
            test_plan_call_and_restart;
          Alcotest.test_case "idle plan fires" `Quick test_plan_fires_when_idle;
        ] );
      ( "crash edges",
        [
          Alcotest.test_case "restart at crash step" `Quick
            test_restart_at_crash_step;
          Alcotest.test_case "double crash" `Quick
            test_double_crash_same_machine;
          Alcotest.test_case "volatile home crash" `Quick
            test_volatile_home_crash_wipes_memory;
          Alcotest.test_case "crash before object creation" `Quick
            test_crash_before_init_creates_object;
          Alcotest.test_case "crash before worker spawn" `Quick
            test_crash_before_init_worker_machines;
        ] );
      ( "ops",
        [
          Alcotest.test_case "store/load" `Quick test_ops_store_load;
          Alcotest.test_case "store kinds" `Quick test_ops_store_kinds;
          Alcotest.test_case "flush persists" `Quick test_ops_flush_persists;
          Alcotest.test_case "faa/cas" `Quick test_ops_faa_cas;
          Alcotest.test_case "alloc_local" `Quick test_ops_alloc_local;
          Alcotest.test_case "concurrent faa" `Quick
            test_concurrent_counter_with_faa;
        ] );
      ( "retry",
        [
          Alcotest.test_case "absorbs transient" `Quick
            test_retry_absorbs_transient;
          Alcotest.test_case "exhaustion raises" `Quick
            test_retry_exhaustion_raises;
          Alcotest.test_case "_result returns Error" `Quick
            test_retry_result_no_exception;
        ] );
      ( "restart",
        [
          Alcotest.test_case "NV contents survive" `Quick
            test_restart_nv_contents_survive;
          Alcotest.test_case "volatile re-zeroed" `Quick
            test_restart_volatile_rezeroed;
          Alcotest.test_case "recovery threads run" `Quick
            test_restarted_machine_runs_recovery;
        ] );
      ( "rootdir",
        [
          Alcotest.test_case "register/lookup" `Quick
            test_rootdir_register_lookup;
          Alcotest.test_case "overwrite" `Quick test_rootdir_overwrite;
          Alcotest.test_case "full" `Quick test_rootdir_full;
          Alcotest.test_case "crash + attach" `Quick
            test_rootdir_survives_crash_and_attach;
          Alcotest.test_case "concurrent registration" `Quick
            test_rootdir_concurrent_registration;
        ] );
    ]
