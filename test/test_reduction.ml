(* Differential gate for the reduced exploration engine: partial-order
   and symmetry reduction must never change what the checker reports.

   - every litmus file in test/data/litmus is decided with every
     reduction setting and against the reference map-set oracle, and the
     reachable sets themselves are compared (bit-identical under POR,
     orbit-expansion-identical under symmetry);
   - the Proposition 1 sweep is run reduced and unreduced over Prop-1
     and Prop-2 (volatile / mixed persistence) domains at N=2 and N=3,
     with failure lists compared verbatim (including a deliberately
     false item, which exercises the exact-failure fallback);
   - QCheck properties pin the algebra the reductions rest on: canon is
     idempotent and permutation-invariant, and statically independent
     enabled label pairs commute without disabling each other;
   - a seeded sweep of random small systems diffs reduced vs unreduced
     verdicts, shrinking and printing any offending system;
   - the configuration enumeration stays memory-bounded (streaming). *)

open Cxl0

let x1 = Loc.v ~owner:0 0
let x2 = Loc.v ~owner:1 0
let x3 = Loc.v ~owner:2 0
let y1 = Loc.v ~owner:0 1

let plain = Explore.Fast.no_reduction
let por_only = { Explore.Fast.por = true; sym = false }
let sym_only = { Explore.Fast.por = false; sym = true }
let full = Explore.Fast.full_reduction

let reductions =
  [ ("plain", plain); ("por", por_only); ("sym", sym_only); ("full", full) ]

(* ------------------------------------------------------------------ *)
(* Litmus files                                                        *)
(* ------------------------------------------------------------------ *)

(* dune runs tests from _build/default/test; the litmus files live in
   the source tree, so walk up until we find them *)
let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "test/data/litmus") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let litmus_dir () =
  match repo_root () with
  | Some root -> Filename.concat root "test/data/litmus"
  | None -> Alcotest.fail "cannot locate test/data/litmus from the cwd"

(* One test per file, in a line-based [key: value] format:
     name: fig4.1
     machines: 3
     persistence: nv | volatile
     expect: allowed | forbidden
     events: RStore_1(x^1,1); crash_1; Load_1(x^1,0)
   Blank lines and #-comments are ignored. *)
let parse_litmus_file path : Litmus.t =
  let ic = open_in path in
  let fields = Hashtbl.create 8 in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = String.trim (input_line ic) in
          if line <> "" && line.[0] <> '#' then
            match String.index_opt line ':' with
            | None ->
                Alcotest.failf "%s: malformed line %S" (Filename.basename path)
                  line
            | Some i ->
                Hashtbl.replace fields
                  (String.trim (String.sub line 0 i))
                  (String.trim
                     (String.sub line (i + 1) (String.length line - i - 1)))
        done
      with End_of_file -> ());
  let get k =
    match Hashtbl.find_opt fields k with
    | Some v -> v
    | None ->
        Alcotest.failf "%s: missing field %S" (Filename.basename path) k
  in
  let system =
    let n = int_of_string (get "machines") in
    let persistence =
      match get "persistence" with
      | "nv" -> Machine.Non_volatile
      | "volatile" -> Machine.Volatile
      | p -> Alcotest.failf "%s: bad persistence %S" path p
    in
    Machine.uniform ~persistence n
  in
  let expect =
    match get "expect" with
    | "allowed" -> Litmus.Allowed
    | "forbidden" -> Litmus.Forbidden
    | v -> Alcotest.failf "%s: bad expect %S" path v
  in
  let events =
    match Parse.program [ get "events" ] with
    | Ok ls -> ls
    | Error e -> Alcotest.failf "%s: bad events: %s" path e
  in
  Litmus.make ~system ~expect (get "name") events

let litmus_files () =
  let dir = litmus_dir () in
  Sys.readdir dir
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".litmus")
  |> List.sort String.compare
  |> List.map (fun f -> Filename.concat dir f)

(* Every reduction setting agrees with the map-set oracle (and with the
   paper) on every litmus file's verdict. *)
let test_litmus_verdicts () =
  let files = litmus_files () in
  Alcotest.(check bool) "found litmus files" true (List.length files >= 16);
  List.iter
    (fun path ->
      let t = parse_litmus_file path in
      let oracle =
        if Explore.feasible t.Litmus.system Config.init t.Litmus.events then
          Litmus.Allowed
        else Litmus.Forbidden
      in
      Alcotest.(check bool)
        (t.Litmus.name ^ ": oracle matches the paper")
        true
        (Litmus.verdict_equal oracle t.Litmus.expect);
      List.iter
        (fun (rname, reduction) ->
          Alcotest.(check bool)
            (Fmt.str "%s: %s verdict = oracle" t.Litmus.name rname)
            true
            (Litmus.verdict_equal (Litmus.decide ~reduction t) oracle))
        reductions)
    (litmus_files ())

(* The reachable sets themselves: POR is bit-identical to the unreduced
   engine; the sym-reduced set orbit-expands to exactly the oracle's
   set. *)
let test_litmus_sets () =
  List.iter
    (fun path ->
      let t = parse_litmus_file path in
      let sys = t.Litmus.system and events = t.Litmus.events in
      let reference = Explore.run sys Config.init events in
      let locs =
        List.filter_map Label.loc events |> List.sort_uniq Loc.compare
      in
      let ctx = Packed.make sys ~locs in
      let set_of reduction =
        let cache = Explore.Fast.create ~reduction ctx in
        (cache, Explore.Fast.run cache (Packed.init ctx) events)
      in
      let check_exact rname reduction =
        let cache, s = set_of reduction in
        Alcotest.(check bool)
          (Fmt.str "%s: %s set = oracle set" t.Litmus.name rname)
          true
          (Config.Set.equal reference (Explore.Fast.to_set cache s))
      in
      check_exact "plain" plain;
      check_exact "por" por_only;
      (* sym: expand every representative's orbit under the run's group *)
      let cache = Explore.Fast.create ~reduction:full ctx in
      let group =
        Explore.Fast.sym_group cache ~fixing:events (Packed.init ctx)
      in
      let s = Explore.Fast.run ~group cache (Packed.init ctx) events in
      let expanded =
        List.fold_left
          (fun acc st ->
            List.fold_left
              (fun acc st' ->
                Config.Set.add (Packed.to_config ctx st') acc)
              acc (Sym.orbit group st))
          Config.Set.empty
          (Explore.Fast.elements s)
      in
      Alcotest.(check bool)
        (Fmt.str "%s: sym orbit expansion = oracle set" t.Litmus.name)
        true
        (Config.Set.equal reference expanded))
    (litmus_files ())

(* ------------------------------------------------------------------ *)
(* Proposition sweeps, reduced vs unreduced vs oracle                  *)
(* ------------------------------------------------------------------ *)

let check_failures_identical msg a b =
  Alcotest.(check int) (msg ^ ": same count") (List.length a) (List.length b);
  List.iter2
    (fun x y ->
      if not (Props.failure_equal x y) then
        Alcotest.failf "%s: %a <> %a" msg Props.pp_failure x Props.pp_failure y)
    a b

(* a deliberately false item: LStore is *not* stronger than MStore *)
let bogus_item =
  {
    Props.id = 99;
    name = "LStore is stronger than MStore (false)";
    lhs = (fun i x v -> [ Label.lstore i x v ]);
    rhs = (fun i x v -> [ Label.mstore i x v ]);
    issuers = Props.all_machines;
  }

let mixed2 =
  Machine.system
    [|
      Machine.make ~persistence:Machine.Volatile "M1";
      Machine.make "M2";
    |]

(* Prop-1 (non-volatile) and Prop-2 (volatile / mixed persistence)
   domains at N=2, plus the N=3 benchmark domain.  The reference oracle
   runs on the N=2 domains and on a single-item slice of N=3; the
   engine pairs (reduced vs unreduced, all settings) run everywhere. *)
let domains =
  [
    ("n2-nv", Machine.uniform 2, [ x1; x2 ], true);
    ("n2-volatile", Machine.uniform ~persistence:Machine.Volatile 2,
     [ x1; x2 ], true);
    ("n2-mixed", mixed2, [ x1; x2 ], true);
    ("n3-nv", Machine.uniform 3, [ x1; x2 ], false);
    ("n3-volatile", Machine.uniform ~persistence:Machine.Volatile 3,
     [ x1; x2 ], false);
  ]

let test_sweep_differential () =
  let vals = [ 0; 1 ] in
  List.iter
    (fun (dname, sys, locs, with_oracle) ->
      let by_reduction =
        List.map
          (fun (rname, reduction) ->
            ( rname,
              Props.check_exhaustive ~reduction ~jobs:1 sys ~locs ~vals ))
          reductions
      in
      let _, base = List.hd by_reduction in
      List.iter
        (fun (rname, fs) ->
          check_failures_identical
            (Fmt.str "%s: %s vs plain" dname rname)
            base fs)
        (List.tl by_reduction);
      if with_oracle then
        check_failures_identical
          (Fmt.str "%s: oracle vs plain" dname)
          (Props.check_exhaustive_reference sys ~locs ~vals)
          base)
    domains;
  (* one cheap item of the N=3 domain against the oracle *)
  let sys = Machine.uniform 3 and locs = [ x1; x2 ] in
  let items = [ Props.item 2 ] in
  check_failures_identical "n3 item 2: oracle vs reduced"
    (Props.check_exhaustive_reference ~items sys ~locs ~vals)
    (Props.check_exhaustive ~items ~reduction:full sys ~locs ~vals)

(* The failing-item path: the exact-failure fallback must reproduce the
   oracle's failures (witnesses included) byte for byte, at any jobs
   count and reduction setting. *)
let test_sweep_failing_item () =
  let vals = [ 0; 1 ] in
  List.iter
    (fun (sys, locs) ->
      let items = [ bogus_item; Props.item 2 ] in
      let oracle = Props.check_exhaustive_reference ~items sys ~locs ~vals in
      Alcotest.(check bool) "bogus item does fail" true (oracle <> []);
      List.iter
        (fun (rname, reduction) ->
          List.iter
            (fun jobs ->
              check_failures_identical
                (Fmt.str "bogus: %s jobs=%d vs oracle" rname jobs)
                oracle
                (Props.check_exhaustive ~items ~reduction ~jobs sys ~locs
                   ~vals))
            [ 1; 3 ])
        reductions)
    [ (Machine.uniform 2, [ x1; x2 ]); (mixed2, [ x1; y1; x2 ]) ]

(* Orbit skipping really skips: on a symmetric domain the reduced sweep
   checks strictly fewer starts, and its counters shrink accordingly. *)
let test_sweep_stats () =
  let sys = Machine.uniform 3
  and locs = [ x1; x2; x3 ]
  and vals = [ 0; 1 ] in
  let items = [ Props.item 2 ] in
  let _, red = Props.check_exhaustive_stats ~items ~reduction:full sys ~locs ~vals in
  let _, unred =
    Props.check_exhaustive_stats ~items ~reduction:plain sys ~locs ~vals
  in
  Alcotest.(check int) "domain size" 27000 unred.Props.sweep_configs;
  Alcotest.(check int) "unreduced checks every start" 27000
    unred.Props.sweep_starts;
  (* |G| = 6 on this domain; Burnside gives 4720 orbits *)
  Alcotest.(check int) "reduced checks one start per orbit" 4720
    red.Props.sweep_starts;
  Alcotest.(check bool) "engine explores >= 5x fewer states" true
    (red.Props.sweep_states * 5 <= unred.Props.sweep_states)

(* ------------------------------------------------------------------ *)
(* QCheck: the algebra under the reductions                            *)
(* ------------------------------------------------------------------ *)

let walk_domain n =
  let sys = Machine.uniform n in
  let locs = if n = 3 then [ x1; x2; x3; y1 ] else [ x1; x2; y1 ] in
  (sys, locs)

(* canon is idempotent, and constant on orbits: canon (apply p s) =
   canon s for every p in the group. *)
let prop_canon =
  QCheck.Test.make ~name:"canon is idempotent and permutation-invariant"
    ~count:150
    QCheck.(triple small_nat (int_bound 25) (int_range 2 3))
    (fun (seed, len, n) ->
      let sys, locs = walk_domain n in
      let vals = [ 0; 1 ] in
      let ctx = Packed.make sys ~locs in
      let g = Sym.group ctx in
      QCheck.assume (Array.length g > 0);
      let t = Lts_trace.random_walk ~seed ~len sys ~locs ~vals in
      List.for_all
        (fun cfg ->
          let st = Packed.of_config ctx cfg in
          let c = Sym.canon g st in
          Packed.equal c (Sym.canon g c)
          && Sym.is_canonical g c
          && Array.for_all
               (fun p -> Packed.equal c (Sym.canon g (Sym.apply p st)))
               g)
        (Lts_trace.configs t))

(* the action commutes with the step rules: apply ctx (Sym.apply p st) l
   under the permuted label equals Sym.apply p of the plain step *)
let prop_action_commutes =
  QCheck.Test.make ~name:"Sym.apply commutes with Packed.apply" ~count:150
    QCheck.(triple small_nat (int_bound 25) (int_range 2 3))
    (fun (seed, len, n) ->
      let sys, locs = walk_domain n in
      let vals = [ 0; 1 ] in
      let ctx = Packed.make sys ~locs in
      let g = Sym.group ctx in
      QCheck.assume (Array.length g > 0);
      let t = Lts_trace.random_walk ~seed ~len sys ~locs ~vals in
      let cfg = t.Lts_trace.final in
      let st = Packed.of_config ctx cfg in
      let labels = Lts_trace.candidates sys cfg ~locs ~vals in
      List.for_all
        (fun l ->
          Array.for_all
            (fun p ->
              let lhs =
                Packed.apply ctx (Sym.apply p st) (Sym.on_label ctx p l)
              in
              let rhs = Option.map (Sym.apply p) (Packed.apply ctx st l) in
              match (lhs, rhs) with
              | None, None -> true
              | Some a, Some b -> Packed.equal a b
              | _ -> false)
            g)
        labels)

(* independence is sound: two independent labels enabled at the same
   state commute to the same successor, and neither disables the other *)
let prop_independence_sound =
  QCheck.Test.make ~name:"independent enabled pairs commute" ~count:150
    QCheck.(triple small_nat (int_bound 25) (int_range 2 3))
    (fun (seed, len, n) ->
      let sys, locs = walk_domain n in
      let vals = [ 0; 1 ] in
      let ctx = Packed.make sys ~locs in
      let t = Lts_trace.random_walk ~seed ~len sys ~locs ~vals in
      let cfg = t.Lts_trace.final in
      let st = Packed.of_config ctx cfg in
      let labels = Lts_trace.candidates sys cfg ~locs ~vals in
      List.for_all
        (fun l1 ->
          List.for_all
            (fun l2 ->
              (not (Explore.Fast.independent l1 l2))
              ||
              match (Packed.apply ctx st l1, Packed.apply ctx st l2) with
              | Some s1, Some s2 -> (
                  (* no disabling, and the diamond closes *)
                  match (Packed.apply ctx s1 l2, Packed.apply ctx s2 l1) with
                  | Some s12, Some s21 -> Packed.equal s12 s21
                  | _ -> false)
              | _ -> true)
            labels)
        labels)

(* ------------------------------------------------------------------ *)
(* Seeded random-system sweep                                          *)
(* ------------------------------------------------------------------ *)

let pp_sys_sexp ppf (sys, locs, labels) =
  let pp_m ppf i =
    Fmt.pf ppf "(M%d %s)" (i + 1)
      (if Machine.is_volatile sys i then "volatile" else "nv")
  in
  Fmt.pf ppf "@[<v>(system %a)@,(locs %a)@,(events %a)@]"
    Fmt.(list ~sep:sp pp_m)
    (Machine.ids sys)
    Fmt.(list ~sep:sp Loc.pp)
    locs
    Fmt.(list ~sep:(any "; ") Label.pp)
    labels

let random_system rng =
  let n = 2 + Random.State.int rng 2 in
  let sys =
    Machine.system
      (Array.init n (fun i ->
           Machine.make
             ~persistence:
               (if Random.State.bool rng then Machine.Non_volatile
                else Machine.Volatile)
             (Printf.sprintf "M%d" (i + 1))))
  in
  let n_locs = 1 + Random.State.int rng 3 in
  let locs =
    List.init n_locs (fun j -> Loc.v ~owner:(Random.State.int rng n) j)
  in
  (sys, locs)

let random_events rng sys locs =
  let n = Machine.n_machines sys in
  let vals = [ 0; 1 ] in
  let pool =
    List.concat_map
      (fun x ->
        List.concat_map
          (fun i ->
            List.concat_map
              (fun v ->
                [
                  Label.lstore i x v; Label.rstore i x v; Label.mstore i x v;
                  Label.load i x v;
                ])
              vals
            @ [ Label.lflush i x; Label.rflush i x ])
          (List.init n Fun.id))
      locs
    @ List.init n (fun i -> Label.crash i)
  in
  let pool = Array.of_list pool in
  let len = 1 + Random.State.int rng 5 in
  List.init len (fun _ -> pool.(Random.State.int rng (Array.length pool)))

(* every engine's verdict on one random instance; [None] = all agree *)
let verdicts sys locs labels =
  let reference = Explore.feasible sys Config.init labels in
  let fast reduction =
    let ctx = Packed.make sys ~locs in
    let cache = Explore.Fast.create ~reduction ctx in
    Explore.Fast.feasible cache (Packed.init ctx) labels
  in
  let got =
    ("oracle", reference)
    :: List.map (fun (rn, r) -> (rn, fast r)) reductions
  in
  if List.for_all (fun (_, v) -> v = reference) got then None else Some got

(* greedy shrink: drop events while the disagreement persists *)
let rec shrink sys locs labels =
  let len = List.length labels in
  let rec try_drop i =
    if i >= len then labels
    else
      let shorter = List.filteri (fun j _ -> j <> i) labels in
      if verdicts sys locs shorter <> None then shrink sys locs shorter
      else try_drop (i + 1)
  in
  if len = 0 then labels else try_drop 0

let test_random_sweep () =
  for seed = 0 to 49 do
    let rng = Random.State.make [| 0xC0FFEE; seed |] in
    let sys, locs = random_system rng in
    let labels = random_events rng sys locs in
    match verdicts sys locs labels with
    | None -> ()
    | Some got ->
        let small = shrink sys locs labels in
        Alcotest.failf
          "seed %d: engines disagree (%a)@.shrunk instance:@.%a" seed
          Fmt.(
            list ~sep:comma (fun ppf (n, v) -> Fmt.pf ppf "%s=%b" n v))
          got pp_sys_sexp (sys, locs, small)
  done

(* ------------------------------------------------------------------ *)
(* Memory-bounded enumeration                                          *)
(* ------------------------------------------------------------------ *)

(* the streaming enumeration must not materialise the domain: forcing a
   handful of configurations of an 810k-config domain stays in the
   kilobyte range (the eager list was hundreds of megabytes) *)
let test_enum_streaming () =
  let sys = Machine.uniform 3
  and locs = [ x1; x2; x3; y1 ]
  and vals = [ 0; 1 ] in
  let total = Props.enum_configs_count sys ~locs ~vals in
  Alcotest.(check int) "domain size" 810000 total;
  let before = Gc.allocated_bytes () in
  let seq = Props.enum_configs_seq sys ~locs ~vals in
  let first10 = List.of_seq (Seq.take 10 seq) in
  let allocated = Gc.allocated_bytes () -. before in
  Alcotest.(check int) "got 10 configs" 10 (List.length first10);
  if allocated > 2_000_000. then
    Alcotest.failf "streaming enumeration allocated %.0f bytes" allocated;
  (* random access near the end of the domain is O(#locs) too *)
  let before = Gc.allocated_bytes () in
  for i = 0 to 99 do
    ignore (Props.enum_config_nth sys ~locs ~vals (total - 1 - i))
  done;
  let allocated = Gc.allocated_bytes () -. before in
  if allocated > 2_000_000. then
    Alcotest.failf "enum_config_nth allocated %.0f bytes per 100 calls"
      allocated

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cxl0-reduction"
    [
      ( "litmus-files",
        [
          Alcotest.test_case "verdicts: all reductions = oracle = paper"
            `Quick test_litmus_verdicts;
          Alcotest.test_case "reachable sets: exact / orbit-expanded" `Quick
            test_litmus_sets;
        ] );
      ( "prop-sweeps",
        [
          Alcotest.test_case "reduced = unreduced = oracle (N=2, N=3)" `Slow
            test_sweep_differential;
          Alcotest.test_case "failing item: fallback is byte-identical" `Slow
            test_sweep_failing_item;
          Alcotest.test_case "orbit skipping counts (N=3 full domain)" `Slow
            test_sweep_stats;
        ] );
      ( "qcheck",
        [
          QCheck_alcotest.to_alcotest prop_canon;
          QCheck_alcotest.to_alcotest prop_action_commutes;
          QCheck_alcotest.to_alcotest prop_independence_sound;
        ] );
      ( "random-systems",
        [
          Alcotest.test_case "50 seeded systems: verdicts agree" `Slow
            test_random_sweep;
        ] );
      ( "memory",
        [
          Alcotest.test_case "enumeration is streaming" `Quick
            test_enum_streaming;
        ] );
    ]
