(* The FliT layer: counters, and per-transformation unit behaviour —
   which primitives each algorithm issues, where a shared store leaves
   the value, and the counter protocol around stores and loads. *)

module F = Fabric
module S = Runtime.Sched
module FI = Flit.Flit_intf

let with_thread ?(machine = 0) ?(n = 2) body =
  let fab = F.uniform ~seed:5 ~evict_prob:0.0 n in
  let s = S.create fab in
  let out = ref None in
  ignore (S.spawn s ~machine ~name:"t" (fun ctx -> out := Some (body fab ctx)));
  ignore (S.run s);
  (fab, Option.get !out)

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let test_counters_basic () =
  let _, () =
    with_thread (fun fab ctx ->
        let c = Flit.Counters.create () in
        let x = Runtime.Ops.alloc ctx ~owner:1 in
        Alcotest.(check int) "initial 0" 0 (Flit.Counters.read c ctx x);
        Flit.Counters.incr c ctx x;
        Flit.Counters.incr c ctx x;
        Alcotest.(check int) "two" 2 (Flit.Counters.read c ctx x);
        Flit.Counters.decr c ctx x;
        Alcotest.(check int) "one" 1 (Flit.Counters.read c ctx x);
        ignore fab)
  in
  ()

let test_counters_per_instance () =
  (* each [create] is its own table: no bleed between instances, even
     for the same location on the same fabric *)
  let t1 = Flit.Counters.create () in
  let t2 = Flit.Counters.create () in
  Hashtbl.replace t1 0 5;
  Alcotest.(check bool) "isolated" true (Hashtbl.find_opt t2 0 = None);
  Alcotest.(check int) "fresh table empty" 0 (Hashtbl.length t2)

let test_counters_account () =
  (* counter traffic is charged to the fabric *)
  let fab, () =
    with_thread (fun _fab ctx ->
        let c = Flit.Counters.create () in
        let x = Runtime.Ops.alloc ctx ~owner:1 in
        Flit.Counters.incr c ctx x;
        ignore (Flit.Counters.read c ctx x))
  in
  let s = F.stats fab in
  Alcotest.(check int) "faa charged" 1 s.F.Stats.faas;
  Alcotest.(check bool) "cycles > 0" true (F.cycles fab > 0)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry () =
  Alcotest.(check int) "four durable" 4 (List.length Flit.Registry.durable);
  Alcotest.(check int) "six total" 6 (List.length Flit.Registry.all);
  Alcotest.(check bool) "find existing" true
    (Flit.Registry.find "alg3-rstore" <> None);
  Alcotest.(check bool) "find missing" true (Flit.Registry.find "nope" = None);
  List.iter
    (fun t ->
      Alcotest.(check bool) (FI.name t ^ " durable flag") true (FI.durable t))
    Flit.Registry.durable;
  Alcotest.(check bool) "control not durable" false
    (FI.durable Flit.Registry.noflush);
  (* [names] lists every registered transformation, findable by name *)
  Alcotest.(check int) "names cover the registry" 9
    (List.length Flit.Registry.names);
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " findable") true
        (Flit.Registry.find n <> None))
    Flit.Registry.names

(* ------------------------------------------------------------------ *)
(* Primitive mix per transformation                                    *)
(* ------------------------------------------------------------------ *)

(* Perform one flagged shared store (plus its machinery) and return the
   stats diff. *)
let store_mix (t : FI.t) =
  let fab, () =
    with_thread (fun fab ctx ->
        let i = FI.instantiate t fab in
        let x = Runtime.Ops.alloc ctx ~owner:1 in
        i.FI.shared_store ctx x 5 ~pflag:true;
        i.FI.complete_op ctx)
  in
  F.stats fab

let test_mix_simple () =
  let s = store_mix Flit.Registry.simple in
  Alcotest.(check int) "one mstore" 1 s.F.Stats.mstores;
  Alcotest.(check int) "no flushes" 0 (F.Stats.flushes s);
  Alcotest.(check int) "no counters" 0 s.F.Stats.faas

let test_mix_alg2 () =
  let s = store_mix Flit.Registry.alg2_mstore in
  Alcotest.(check int) "one mstore" 1 s.F.Stats.mstores;
  Alcotest.(check int) "no flushes" 0 (F.Stats.flushes s);
  Alcotest.(check int) "no counters (omitted in Alg 2)" 0 s.F.Stats.faas

let test_mix_alg3 () =
  let s = store_mix Flit.Registry.alg3_rstore in
  Alcotest.(check int) "one rstore" 1 s.F.Stats.rstores;
  Alcotest.(check int) "one rflush" 1 s.F.Stats.rflushes;
  Alcotest.(check int) "counter inc+dec" 2 s.F.Stats.faas

let test_mix_weakest () =
  let s = store_mix Flit.Registry.alg3'_weakest in
  Alcotest.(check int) "one lstore" 1 s.F.Stats.lstores;
  Alcotest.(check int) "one rflush" 1 s.F.Stats.rflushes;
  Alcotest.(check int) "counter inc+dec" 2 s.F.Stats.faas

let test_mix_weakest_lflush () =
  let s = store_mix Flit.Registry.weakest_lflush in
  Alcotest.(check int) "one lstore" 1 s.F.Stats.lstores;
  Alcotest.(check int) "one lflush" 1 s.F.Stats.lflushes;
  Alcotest.(check int) "no rflush" 0 s.F.Stats.rflushes

let test_mix_noflush () =
  let s = store_mix Flit.Registry.noflush in
  Alcotest.(check int) "one lstore" 1 s.F.Stats.lstores;
  Alcotest.(check int) "nothing else" 0
    (F.Stats.flushes s + s.F.Stats.faas + s.F.Stats.mstores + s.F.Stats.rstores)

let test_unflagged_degrades_to_lstore () =
  List.iter
    (fun t ->
      let name = FI.name t in
      let fab, () =
        with_thread (fun fab ctx ->
            let i = FI.instantiate t fab in
            let x = Runtime.Ops.alloc ctx ~owner:1 in
            i.FI.shared_store ctx x 5 ~pflag:false)
      in
      let s = F.stats fab in
      if name <> "simple" then begin
        (* the simple transformation deliberately ignores pflag *)
        Alcotest.(check int) (name ^ ": lstore") 1 s.F.Stats.lstores;
        Alcotest.(check int) (name ^ ": no flush") 0 (F.Stats.flushes s)
      end)
    Flit.Registry.all

(* ------------------------------------------------------------------ *)
(* Where does the value land?                                          *)
(* ------------------------------------------------------------------ *)

let landing (t : FI.t) =
  let fab, x =
    with_thread (fun fab ctx ->
        let i = FI.instantiate t fab in
        let x = Runtime.Ops.alloc ctx ~owner:1 in
        i.FI.shared_store ctx x 5 ~pflag:true;
        x)
  in
  let cfg = F.to_config fab in
  let l = F.to_loc fab x in
  ( Cxl0.Config.mem_get cfg l,
    Cxl0.Config.cache_get cfg 0 l,
    Cxl0.Config.cache_get cfg 1 l )

let test_landing_durables_persist () =
  List.iter
    (fun t ->
      let mem, _, _ = landing t in
      Alcotest.(check int) (FI.name t ^ " persisted on completion") 5 mem)
    Flit.Registry.durable

let test_landing_lflush_variant () =
  (* the Prop-2 variant leaves the value at the owner's cache *)
  let mem, c0, c1 = landing Flit.Registry.weakest_lflush in
  Alcotest.(check int) "not in memory" 0 mem;
  Alcotest.(check (option int)) "owner cache" (Some 5) c1;
  Alcotest.(check (option int)) "left the writer" None c0

let test_landing_noflush () =
  let mem, c0, _ = landing Flit.Registry.noflush in
  Alcotest.(check int) "not in memory" 0 mem;
  Alcotest.(check (option int)) "stuck in writer cache" (Some 5) c0

(* ------------------------------------------------------------------ *)
(* Load-side helping                                                   *)
(* ------------------------------------------------------------------ *)

let test_shared_load_helps_when_counter_positive () =
  (* simulate an in-flight writer: bump the instance's counter, leave an
     unflushed value; a reader's shared_load must flush it *)
  let fab, () =
    with_thread (fun fab ctx ->
        let i = FI.instantiate Flit.Registry.alg3_rstore fab in
        let c = Option.get i.FI.counters in
        let x = Runtime.Ops.alloc ctx ~owner:1 in
        Runtime.Ops.lstore ctx x 9;
        Flit.Counters.incr c ctx x;
        let v = i.FI.shared_load ctx x ~pflag:true in
        Alcotest.(check int) "read latest" 9 v)
  in
  let cfg = F.to_config fab in
  let l = Cxl0.Loc.v ~owner:1 0 in
  Alcotest.(check int) "helped into memory" 9 (Cxl0.Config.mem_get cfg l);
  Alcotest.(check int) "one helping rflush" 1 (F.stats fab).F.Stats.rflushes

let test_shared_load_no_help_when_zero () =
  let fab, v =
    with_thread (fun fab ctx ->
        let i = FI.instantiate Flit.Registry.alg3_rstore fab in
        let x = Runtime.Ops.alloc ctx ~owner:1 in
        Runtime.Ops.lstore ctx x 9;
        i.FI.shared_load ctx x ~pflag:true)
  in
  Alcotest.(check int) "value" 9 v;
  Alcotest.(check int) "no flush issued" 0 (F.stats fab).F.Stats.rflushes

(* ------------------------------------------------------------------ *)
(* CAS path                                                            *)
(* ------------------------------------------------------------------ *)

let test_cas_success_persists () =
  List.iter
    (fun t ->
      let fab, ok =
        with_thread (fun fab ctx ->
            let i = FI.instantiate t fab in
            let x = Runtime.Ops.alloc ctx ~owner:1 in
            i.FI.shared_cas ctx x ~expected:0 ~desired:3 ~pflag:true)
      in
      Alcotest.(check bool) (FI.name t ^ " cas ok") true ok;
      let mem = Cxl0.Config.mem_get (F.to_config fab) (Cxl0.Loc.v ~owner:1 0) in
      Alcotest.(check int) (FI.name t ^ " cas persisted") 3 mem)
    Flit.Registry.durable

let test_cas_failure_no_store () =
  let fab, ok =
    with_thread (fun fab ctx ->
        let i = FI.instantiate Flit.Registry.alg3_rstore fab in
        let x = Runtime.Ops.alloc ctx ~owner:1 in
        i.FI.shared_cas ctx x ~expected:7 ~desired:3 ~pflag:true)
  in
  Alcotest.(check bool) "failed" false ok;
  let s = F.stats fab in
  Alcotest.(check int) "no store" 0 (s.F.Stats.rstores + s.F.Stats.lstores);
  Alcotest.(check int) "no flush on failure" 0 s.F.Stats.rflushes;
  Alcotest.(check int) "counter inc+dec still balanced" 2 s.F.Stats.faas

let test_counter_balanced_after_store () =
  let fab = F.uniform ~seed:5 ~evict_prob:0.0 2 in
  let i = FI.instantiate Flit.Registry.alg3'_weakest fab in
  let s = S.create fab in
  ignore
    (S.spawn s ~machine:0 ~name:"t" (fun ctx ->
         let x = Runtime.Ops.alloc ctx ~owner:1 in
         i.FI.shared_store ctx x 5 ~pflag:true;
         Alcotest.(check int) "counter back to zero" 0
           (Flit.Counters.read (Option.get i.FI.counters) ctx x)));
  ignore (S.run s)

(* ------------------------------------------------------------------ *)
(* Adaptive transformation (§4.4 address-based instrumentation)        *)
(* ------------------------------------------------------------------ *)

let with_thread_on ~volatile_home body =
  let fab =
    F.create ~seed:5 ~evict_prob:0.0
      [|
        F.machine "c1";
        F.machine ~volatile:volatile_home "home";
      |]
  in
  let s = S.create fab in
  ignore (S.spawn s ~machine:0 ~name:"t" (fun ctx -> body fab ctx));
  ignore (S.run s);
  fab

let test_adaptive_nv_uses_rflush () =
  let fab =
    with_thread_on ~volatile_home:false (fun fab ctx ->
        let i = FI.instantiate Flit.Registry.adaptive fab in
        let x = Runtime.Ops.alloc ctx ~owner:1 in
        i.FI.shared_store ctx x 5 ~pflag:true)
  in
  let s = F.stats fab in
  Alcotest.(check int) "rflush on NV-homed data" 1 s.F.Stats.rflushes;
  Alcotest.(check int) "no lflush" 0 s.F.Stats.lflushes;
  (* and the value is persistent *)
  Alcotest.(check int) "persisted" 5
    (Cxl0.Config.mem_get (F.to_config fab) (Cxl0.Loc.v ~owner:1 0))

let test_adaptive_volatile_uses_lflush () =
  let fab =
    with_thread_on ~volatile_home:true (fun fab ctx ->
        let i = FI.instantiate Flit.Registry.adaptive fab in
        let x = Runtime.Ops.alloc ctx ~owner:1 in
        i.FI.shared_store ctx x 5 ~pflag:true)
  in
  let s = F.stats fab in
  Alcotest.(check int) "lflush on volatile-homed data" 1 s.F.Stats.lflushes;
  Alcotest.(check int) "no rflush" 0 s.F.Stats.rflushes;
  (* the value reached the owner's cache (the Prop-2 guarantee) *)
  Alcotest.(check (option int)) "at the owner" (Some 5)
    (Cxl0.Config.cache_get (F.to_config fab) 1 (Cxl0.Loc.v ~owner:1 0))

let test_adaptive_mixed_addresses () =
  (* one store to each kind of home in a 3-machine system: each address
     gets its own flush strength in the same run *)
  let fab =
    F.create ~seed:5 ~evict_prob:0.0
      [| F.machine "c"; F.machine "nv-home"; F.machine ~volatile:true "v-home" |]
  in
  let i = FI.instantiate Flit.Registry.adaptive fab in
  let s = S.create fab in
  ignore
    (S.spawn s ~machine:0 ~name:"t" (fun ctx ->
         let x_nv = Runtime.Ops.alloc ctx ~owner:1 in
         let x_v = Runtime.Ops.alloc ctx ~owner:2 in
         i.FI.shared_store ctx x_nv 1 ~pflag:true;
         i.FI.shared_store ctx x_v 2 ~pflag:true));
  ignore (S.run s);
  let st = F.stats fab in
  Alcotest.(check int) "one rflush (nv address)" 1 st.F.Stats.rflushes;
  Alcotest.(check int) "one lflush (volatile address)" 1 st.F.Stats.lflushes

(* ------------------------------------------------------------------ *)
(* Private stores                                                      *)
(* ------------------------------------------------------------------ *)

let test_private_store_persists () =
  List.iter
    (fun t ->
      let fab, () =
        with_thread (fun fab ctx ->
            let i = FI.instantiate t fab in
            let x = Runtime.Ops.alloc ctx ~owner:1 in
            i.FI.private_store ctx x 8 ~pflag:true)
      in
      let s = F.stats fab in
      Alcotest.(check int)
        (FI.name t ^ " private store uses no counter")
        0 s.F.Stats.faas;
      let mem = Cxl0.Config.mem_get (F.to_config fab) (Cxl0.Loc.v ~owner:1 0) in
      Alcotest.(check int) (FI.name t ^ " persisted") 8 mem)
    Flit.Registry.durable

let () =
  Alcotest.run "flit"
    [
      ( "counters",
        [
          Alcotest.test_case "basic" `Quick test_counters_basic;
          Alcotest.test_case "per instance" `Quick test_counters_per_instance;
          Alcotest.test_case "accounting" `Quick test_counters_account;
        ] );
      ("registry", [ Alcotest.test_case "contents" `Quick test_registry ]);
      ( "primitive-mix",
        [
          Alcotest.test_case "simple" `Quick test_mix_simple;
          Alcotest.test_case "alg2" `Quick test_mix_alg2;
          Alcotest.test_case "alg3" `Quick test_mix_alg3;
          Alcotest.test_case "alg3'" `Quick test_mix_weakest;
          Alcotest.test_case "lflush variant" `Quick test_mix_weakest_lflush;
          Alcotest.test_case "noflush" `Quick test_mix_noflush;
          Alcotest.test_case "pflag=false degrades" `Quick
            test_unflagged_degrades_to_lstore;
        ] );
      ( "landing",
        [
          Alcotest.test_case "durables persist" `Quick
            test_landing_durables_persist;
          Alcotest.test_case "lflush variant" `Quick test_landing_lflush_variant;
          Alcotest.test_case "noflush" `Quick test_landing_noflush;
        ] );
      ( "load-helping",
        [
          Alcotest.test_case "counter>0 helps" `Quick
            test_shared_load_helps_when_counter_positive;
          Alcotest.test_case "counter=0 no help" `Quick
            test_shared_load_no_help_when_zero;
        ] );
      ( "cas",
        [
          Alcotest.test_case "success persists" `Quick test_cas_success_persists;
          Alcotest.test_case "failure stores nothing" `Quick
            test_cas_failure_no_store;
          Alcotest.test_case "counter balanced" `Quick
            test_counter_balanced_after_store;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "nv -> rflush" `Quick test_adaptive_nv_uses_rflush;
          Alcotest.test_case "volatile -> lflush" `Quick
            test_adaptive_volatile_uses_lflush;
          Alcotest.test_case "mixed addresses" `Quick
            test_adaptive_mixed_addresses;
        ] );
      ( "private",
        [ Alcotest.test_case "persists" `Quick test_private_store_persists ] );
    ]
