(* Proposition 1 (§3.3): exhaustive bounded model checking over small
   domains, plus randomized checks on larger systems, plus sanity checks
   that the checker itself can detect false "propositions". *)

open Cxl0

let test_items_present () =
  Alcotest.(check int) "eight items" 8 (List.length Props.items);
  List.iteri
    (fun i it -> Alcotest.(check int) "numbered in order" (i + 1) it.Props.id)
    Props.items

(* --- exhaustive: 2 machines, 1 loc each, vals {0,1} (the default) --- *)
let test_exhaustive_default () =
  let _sys, failures = Props.check_default () in
  List.iter (fun f -> Fmt.epr "%a@." Props.pp_failure f) failures;
  Alcotest.(check int) "no failures" 0 (List.length failures)

(* --- exhaustive: volatile machines (crash rule differs; the
   propositions do not involve crashes but the domain enumeration
   should still hold) --- *)
let test_exhaustive_volatile () =
  let sys = Machine.uniform ~persistence:Machine.Volatile 2 in
  let locs = [ Loc.v ~owner:0 0; Loc.v ~owner:1 0 ] in
  let failures =
    Props.check_exhaustive ~jobs:(Parallel.default_jobs ()) sys ~locs
      ~vals:[ 0; 1 ]
  in
  Alcotest.(check int) "no failures" 0 (List.length failures)

(* --- exhaustive: 3 machines, mixed ownership, smaller value domain
   (larger holder subsets exercise multi-holder configurations) --- *)
let test_exhaustive_three_machines () =
  let sys = Machine.uniform 3 in
  let locs = [ Loc.v ~owner:0 0; Loc.v ~owner:2 0 ] in
  let failures =
    Props.check_exhaustive ~jobs:(Parallel.default_jobs ()) sys ~locs
      ~vals:[ 0; 1 ]
  in
  Alcotest.(check int) "no failures" 0 (List.length failures)

(* --- exhaustive: heterogeneous persistence (§3.1 allows any mix of
   volatile and non-volatile machines) --- *)
let test_exhaustive_mixed_persistence () =
  let sys =
    Machine.system
      [|
        Machine.make ~persistence:Machine.Volatile "compute";
        Machine.make ~persistence:Machine.Non_volatile "memnode";
      |]
  in
  let locs = [ Loc.v ~owner:0 0; Loc.v ~owner:1 0 ] in
  let failures =
    Props.check_exhaustive ~jobs:(Parallel.default_jobs ()) sys ~locs
      ~vals:[ 0; 1 ]
  in
  Alcotest.(check int) "no failures" 0 (List.length failures)

(* --- a deliberately false simulation must be caught --- *)
let test_checker_detects_false_item () =
  let bogus =
    {
      Props.id = 99;
      name = "LStore is stronger than MStore (false)";
      lhs = (fun i x v -> [ Label.lstore i x v ]);
      rhs = (fun i x v -> [ Label.mstore i x v ]);
      issuers = Props.non_owners;
    }
  in
  let sys = Machine.uniform 2 in
  let locs = [ Loc.v ~owner:1 0 ] in
  let failures =
    Props.check_exhaustive ~items:[ bogus ] sys ~locs ~vals:[ 0; 1 ]
  in
  Alcotest.(check bool) "counterexample found" true (failures <> [])

(* A second false statement: LFlush is NOT stronger than RFlush. *)
let test_checker_detects_false_flush_item () =
  let bogus =
    {
      Props.id = 98;
      name = "LFlush is stronger than RFlush (false)";
      lhs = (fun i x _ -> [ Label.lflush i x ]);
      rhs = (fun i x _ -> [ Label.rflush i x ]);
      issuers = Props.non_owners;
    }
  in
  let sys = Machine.uniform 2 in
  let locs = [ Loc.v ~owner:1 0 ] in
  let failures =
    Props.check_exhaustive ~items:[ bogus ] sys ~locs ~vals:[ 0; 1 ]
  in
  Alcotest.(check bool) "counterexample found" true (failures <> [])

(* --- enum_configs sanity --- *)
let test_enum_configs () =
  let sys = Machine.uniform 2 in
  let locs = [ Loc.v ~owner:0 0 ] in
  let cfgs = Props.enum_configs sys ~locs ~vals:[ 0; 1 ] in
  (* per loc: cached in {none, (v, holders)} = 1 + 2*3 = 7; mem in {0,1}
     -> 14 configurations *)
  Alcotest.(check int) "count" 14 (List.length cfgs);
  Alcotest.(check bool) "all satisfy invariant" true
    (List.for_all Config.invariant cfgs);
  (* all distinct *)
  let set = List.fold_left (fun s c -> Config.Set.add c s) Config.Set.empty cfgs in
  Alcotest.(check int) "all distinct" 14 (Config.Set.cardinal set)

(* --- randomized: items hold from configurations reached by random
   walks on a 3-machine system with 3 locations --- *)
let prop_items_on_random_reachable =
  QCheck.Test.make ~name:"Prop1 items hold from random reachable configs"
    ~count:60
    QCheck.(pair small_nat (int_bound 25))
    (fun (seed, len) ->
      let sys = Machine.uniform 3 in
      let locs = [ Loc.v ~owner:0 0; Loc.v ~owner:1 0; Loc.v ~owner:2 0 ] in
      let vals = [ 0; 1 ] in
      let t = Lts_trace.random_walk ~seed ~len sys ~locs ~vals in
      List.for_all
        (fun it ->
          Props.check_item sys it t.Lts_trace.final ~locs ~vals = None)
        Props.items)

let () =
  Alcotest.run "cxl0-props"
    [
      ( "prop1",
        [
          Alcotest.test_case "items present" `Quick test_items_present;
          Alcotest.test_case "exhaustive default domain" `Quick
            test_exhaustive_default;
          Alcotest.test_case "exhaustive volatile" `Quick
            test_exhaustive_volatile;
          Alcotest.test_case "exhaustive three machines" `Slow
            test_exhaustive_three_machines;
          Alcotest.test_case "exhaustive mixed persistence" `Quick
            test_exhaustive_mixed_persistence;
        ] );
      ( "checker-sanity",
        [
          Alcotest.test_case "false item caught" `Quick
            test_checker_detects_false_item;
          Alcotest.test_case "false flush item caught" `Quick
            test_checker_detects_false_flush_item;
          Alcotest.test_case "config enumeration" `Quick test_enum_configs;
        ] );
      ( "randomized",
        [ QCheck_alcotest.to_alcotest prop_items_on_random_reachable ] );
    ]
