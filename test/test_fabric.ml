(* The runtime fabric: unit tests for every primitive, the replacement
   machinery, crash behaviour, accounting — and step-by-step
   cross-validation against the formal CXL0 semantics. *)

module F = Fabric

let mk ?(n = 2) ?(volatile = false) ?(cache_capacity = 1024) () =
  F.uniform ~seed:7 ~evict_prob:0.0 ~volatile ~cache_capacity n

(* ------------------------------------------------------------------ *)
(* Construction / allocation                                           *)
(* ------------------------------------------------------------------ *)

let test_create_validation () =
  Alcotest.check_raises "no machines" (Invalid_argument "Fabric.create: no machines")
    (fun () -> ignore (F.create [||]));
  Alcotest.check_raises "capacity" (Invalid_argument "Fabric.machine: capacity < 1")
    (fun () -> ignore (F.machine ~cache_capacity:0 "x"))

let test_alloc () =
  let f = mk () in
  let a = F.alloc f ~owner:0 in
  let b = F.alloc f ~owner:1 in
  let c = F.alloc f ~owner:0 in
  Alcotest.(check int) "dense ids" 1 b;
  Alcotest.(check int) "dense ids" 2 c;
  Alcotest.(check int) "owner a" 0 (F.owner f a);
  Alcotest.(check int) "owner b" 1 (F.owner f b);
  Alcotest.(check int) "count" 3 (F.n_locs f);
  (* per-owner offsets are dense too (visible via to_loc) *)
  Alcotest.(check int) "a offset" 0 (Cxl0.Loc.off (F.to_loc f a));
  Alcotest.(check int) "c offset" 1 (Cxl0.Loc.off (F.to_loc f c))

let test_alloc_growth () =
  (* force the location table to grow past its initial 64 entries *)
  let f = mk () in
  let locs = F.alloc_n f ~owner:0 200 in
  Alcotest.(check int) "200 allocated" 200 (List.length locs);
  List.iteri (fun i x -> Alcotest.(check int) "id" i x) locs;
  F.lstore f 0 199 42;
  Alcotest.(check int) "store/load across growth" 42 (F.load f 0 199)

let test_bad_loc () =
  let f = mk () in
  Alcotest.check_raises "unallocated" (Invalid_argument "Fabric: bad location")
    (fun () -> ignore (F.load f 0 3))

let test_uid_unique () =
  let a = mk () and b = mk () in
  Alcotest.(check bool) "distinct uids" true (F.uid a <> F.uid b)

(* ------------------------------------------------------------------ *)
(* Primitive semantics                                                 *)
(* ------------------------------------------------------------------ *)

let test_load_initial_zero () =
  let f = mk () in
  let x = F.alloc f ~owner:1 in
  Alcotest.(check int) "zero initialised" 0 (F.load f 0 x)

let test_lstore_then_load () =
  let f = mk () in
  let x = F.alloc f ~owner:1 in
  F.lstore f 0 x 5;
  Alcotest.(check int) "same machine" 5 (F.load f 0 x);
  Alcotest.(check int) "other machine (coherent)" 5 (F.load f 1 x);
  (* memory not yet updated *)
  let cfg = F.to_config f in
  Alcotest.(check int) "mem still 0" 0 (Cxl0.Config.mem_get cfg (F.to_loc f x))

let test_rstore_placement () =
  let f = mk () in
  let x = F.alloc f ~owner:1 in
  F.rstore f 0 x 5;
  let cfg = F.to_config f in
  let l = F.to_loc f x in
  Alcotest.(check (option int)) "owner cache" (Some 5)
    (Cxl0.Config.cache_get cfg 1 l);
  Alcotest.(check (option int)) "issuer cache empty" None
    (Cxl0.Config.cache_get cfg 0 l)

let test_mstore_placement () =
  let f = mk () in
  let x = F.alloc f ~owner:1 in
  F.lstore f 0 x 3;
  F.mstore f 0 x 5;
  let cfg = F.to_config f in
  let l = F.to_loc f x in
  Alcotest.(check int) "memory" 5 (Cxl0.Config.mem_get cfg l);
  Alcotest.(check (option int)) "no cache" None (Cxl0.Config.cache_get cfg 0 l)

let test_load_copies_into_reader () =
  let f = mk ~n:3 () in
  let x = F.alloc f ~owner:2 in
  F.lstore f 0 x 9;
  ignore (F.load f 1 x);
  let cfg = F.to_config f in
  let l = F.to_loc f x in
  Alcotest.(check (option int)) "copied" (Some 9) (Cxl0.Config.cache_get cfg 1 l)

let test_flush_forcing () =
  let f = mk () in
  let x = F.alloc f ~owner:1 in
  F.lstore f 0 x 5;
  F.lflush f 0 x;
  let cfg = F.to_config f in
  let l = F.to_loc f x in
  Alcotest.(check (option int)) "moved to owner cache" (Some 5)
    (Cxl0.Config.cache_get cfg 1 l);
  Alcotest.(check int) "not yet memory" 0 (Cxl0.Config.mem_get cfg l);
  F.rflush f 0 x;
  let cfg = F.to_config f in
  Alcotest.(check int) "rflush reaches memory" 5 (Cxl0.Config.mem_get cfg l);
  Alcotest.(check (option int)) "caches drained" None
    (Cxl0.Config.cache_get cfg 1 l)

let test_lflush_by_owner_writes_back () =
  let f = mk () in
  let x = F.alloc f ~owner:0 in
  F.lstore f 0 x 5;
  F.lflush f 0 x;
  let cfg = F.to_config f in
  Alcotest.(check int) "owner lflush = write back" 5
    (Cxl0.Config.mem_get cfg (F.to_loc f x))

let test_flush_clean_noop () =
  let f = mk () in
  let x = F.alloc f ~owner:1 in
  let before = (F.stats f).F.Stats.cycles in
  F.rflush f 0 x;
  let after = (F.stats f).F.Stats.cycles in
  Alcotest.(check bool) "cheap clean check" true
    (after - before <= Fabric.Latency.default.F.Latency.clean_check)

(* ------------------------------------------------------------------ *)
(* Atomics                                                             *)
(* ------------------------------------------------------------------ *)

let test_faa () =
  let f = mk () in
  let x = F.alloc f ~owner:1 in
  Alcotest.(check int) "returns old" 0 (F.faa f 0 x 5);
  Alcotest.(check int) "returns old again" 5 (F.faa f 1 x 2);
  Alcotest.(check int) "value" 7 (F.load f 0 x)

let test_cas_success_failure () =
  let f = mk () in
  let x = F.alloc f ~owner:1 in
  Alcotest.(check bool) "success" true
    (F.cas f 0 x ~expected:0 ~desired:4 ~kind:Cxl0.Label.R);
  Alcotest.(check bool) "failure" false
    (F.cas f 0 x ~expected:0 ~desired:9 ~kind:Cxl0.Label.R);
  Alcotest.(check int) "value unchanged by failed cas" 4 (F.load f 0 x)

let test_cas_kind_m_persists () =
  let f = mk () in
  let x = F.alloc f ~owner:1 in
  ignore (F.cas f 0 x ~expected:0 ~desired:4 ~kind:Cxl0.Label.M);
  Alcotest.(check int) "straight to memory" 4
    (Cxl0.Config.mem_get (F.to_config f) (F.to_loc f x))

(* ------------------------------------------------------------------ *)
(* Replacement machinery                                               *)
(* ------------------------------------------------------------------ *)

let test_capacity_eviction () =
  let f = mk ~cache_capacity:1 () in
  let x = F.alloc f ~owner:1 in
  let y = F.alloc f ~owner:1 in
  F.lstore f 0 x 1;
  F.lstore f 0 y 2;
  (* capacity 1 on machine 0: storing y evicted x toward its owner *)
  let cfg = F.to_config f in
  Alcotest.(check (option int)) "x moved to owner cache" (Some 1)
    (Cxl0.Config.cache_get cfg 1 (F.to_loc f x));
  Alcotest.(check (option int)) "y local" (Some 2)
    (Cxl0.Config.cache_get cfg 0 (F.to_loc f y));
  Alcotest.(check bool) "eviction counted" true
    ((F.stats f).F.Stats.evictions_horizontal >= 1);
  Alcotest.(check bool) "bookkeeping" true (F.check_coherence f)

let test_eviction_cascade_vertical () =
  (* owner with capacity 1: receiving an evicted line may evict its own *)
  let f = mk ~cache_capacity:1 () in
  let x = F.alloc f ~owner:1 in
  let y = F.alloc f ~owner:1 in
  F.lstore f 1 x 1;  (* owner caches x *)
  F.lstore f 0 y 2;  (* non-owner caches y *)
  F.lflush f 0 y;    (* forces y to owner cache: owner over capacity *)
  Alcotest.(check bool) "some vertical eviction happened" true
    ((F.stats f).F.Stats.evictions_vertical >= 1);
  Alcotest.(check bool) "coherent" true (F.check_coherence f);
  (* no value lost: both still visible *)
  Alcotest.(check int) "x visible" 1 (F.load f 0 x);
  Alcotest.(check int) "y visible" 2 (F.load f 0 y)

let test_drain () =
  let f = mk () in
  let x = F.alloc f ~owner:1 in
  let y = F.alloc f ~owner:0 in
  F.lstore f 0 x 1;
  F.lstore f 1 y 2;
  F.drain f;
  let cfg = F.to_config f in
  Alcotest.(check int) "x in memory" 1 (Cxl0.Config.mem_get cfg (F.to_loc f x));
  Alcotest.(check int) "y in memory" 2 (Cxl0.Config.mem_get cfg (F.to_loc f y));
  Alcotest.(check bool) "nothing cached" true
    (Cxl0.Config.holders (F.to_system f) cfg (F.to_loc f x) = [])

let test_maybe_evict_deterministic () =
  let f = F.uniform ~seed:3 ~evict_prob:1.0 2 in
  let x = F.alloc f ~owner:1 in
  F.lstore f 0 x 1;
  (* evict_prob = 1: a tick must evict the only cached line *)
  F.maybe_evict f;
  let cfg = F.to_config f in
  Alcotest.(check (option int)) "left machine 0" None
    (Cxl0.Config.cache_get cfg 0 (F.to_loc f x))

(* ------------------------------------------------------------------ *)
(* Crash                                                               *)
(* ------------------------------------------------------------------ *)

let test_crash_nv () =
  let f = mk () in
  let x = F.alloc f ~owner:1 in
  F.rstore f 0 x 5;
  (* value in owner's cache only *)
  F.crash f 1;
  Alcotest.(check int) "lost (nv mem was never written)" 0 (F.load f 0 x);
  Alcotest.(check bool) "coherent" true (F.check_coherence f)

let test_crash_nv_after_flush () =
  let f = mk () in
  let x = F.alloc f ~owner:1 in
  F.rstore f 0 x 5;
  F.rflush f 0 x;
  F.crash f 1;
  Alcotest.(check int) "persisted" 5 (F.load f 0 x)

let test_crash_volatile () =
  let f = mk ~volatile:true () in
  let x = F.alloc f ~owner:1 in
  F.mstore f 0 x 5;
  F.crash f 1;
  Alcotest.(check int) "volatile memory zeroed" 0 (F.load f 0 x)

let test_crash_spares_others () =
  let f = mk ~n:3 () in
  let x = F.alloc f ~owner:2 in
  F.lstore f 0 x 5;
  F.crash f 1;
  Alcotest.(check int) "writer's cache intact" 5 (F.load f 0 x)

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)
(* ------------------------------------------------------------------ *)

let test_stats_counting () =
  let f = mk () in
  let x = F.alloc f ~owner:1 in
  F.lstore f 0 x 1;
  F.rstore f 0 x 2;
  F.mstore f 0 x 3;
  ignore (F.load f 0 x);
  F.lflush f 0 x;
  F.rflush f 0 x;
  ignore (F.faa f 0 x 1);
  ignore (F.cas f 0 x ~expected:4 ~desired:5 ~kind:Cxl0.Label.L);
  let s = F.stats f in
  Alcotest.(check int) "lstores" 2 s.F.Stats.lstores;
  (* the successful CAS with kind L counts as an lstore too *)
  Alcotest.(check int) "rstores" 1 s.F.Stats.rstores;
  Alcotest.(check int) "mstores" 1 s.F.Stats.mstores;
  Alcotest.(check int) "loads" 1 (F.Stats.loads s);
  Alcotest.(check int) "flushes" 2 (F.Stats.flushes s);
  Alcotest.(check int) "faa" 1 s.F.Stats.faas;
  Alcotest.(check int) "cas" 1 s.F.Stats.cass

let test_latency_ordering () =
  (* remote accesses must cost more than local ones under the default
     model: compare a local-cache load with a memory load *)
  let f = mk () in
  let x = F.alloc f ~owner:0 in
  let y = F.alloc f ~owner:1 in
  F.lstore f 0 x 1;
  let c0 = F.cycles f in
  ignore (F.load f 0 x) (* local cache hit *);
  let c1 = F.cycles f in
  ignore (F.load f 0 y) (* remote memory *);
  let c2 = F.cycles f in
  Alcotest.(check bool) "local cheap" true (c1 - c0 < c2 - c1)

let test_stats_diff_reset () =
  let f = mk () in
  let x = F.alloc f ~owner:0 in
  F.lstore f 0 x 1;
  let snap = F.Stats.copy (F.stats f) in
  F.lstore f 0 x 2;
  let d = F.Stats.diff (F.stats f) snap in
  Alcotest.(check int) "one new lstore" 1 d.F.Stats.lstores;
  F.Stats.reset (F.stats f);
  Alcotest.(check int) "reset" 0 (F.stats f).F.Stats.lstores

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)
(* ------------------------------------------------------------------ *)

let test_topology_flat () =
  let t = F.Topology.flat 3 in
  Alcotest.(check int) "size" 3 (F.Topology.size t);
  Alcotest.(check int) "diagonal" 0 (F.Topology.hops t 1 1);
  Alcotest.(check int) "off-diagonal" 1 (F.Topology.hops t 0 2)

let test_topology_two_level () =
  let t = F.Topology.two_level [ 2; 2 ] in
  Alcotest.(check int) "same leaf" 1 (F.Topology.hops t 0 1);
  Alcotest.(check int) "across spine" 3 (F.Topology.hops t 1 2);
  Alcotest.(check int) "symmetric" (F.Topology.hops t 3 0)
    (F.Topology.hops t 0 3)

let test_topology_validation () =
  Alcotest.check_raises "ragged" (Invalid_argument "Topology.of_matrix: ragged")
    (fun () -> ignore (F.Topology.of_matrix [| [| 0 |]; [| 1; 0 |] |]));
  Alcotest.check_raises "diagonal"
    (Invalid_argument "Topology.of_matrix: nonzero diagonal") (fun () ->
      ignore (F.Topology.of_matrix [| [| 1 |] |]));
  Alcotest.check_raises "asymmetric"
    (Invalid_argument "Topology.of_matrix: asymmetric") (fun () ->
      ignore (F.Topology.of_matrix [| [| 0; 1 |]; [| 2; 0 |] |]));
  Alcotest.check_raises "empty group"
    (Invalid_argument "Topology.two_level: empty group") (fun () ->
      ignore (F.Topology.two_level [ 1; 0 ]));
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Fabric.create: topology size mismatch") (fun () ->
      ignore
        (F.create ~topology:(F.Topology.flat 3) [| F.machine "a"; F.machine "b" |]))

(* The pretty-printers are part of the tooling surface (bench headers,
   verbose CLI output); pin their shape so a field rename can't silently
   turn them into "<abstr>"-style noise. *)
let test_latency_pp () =
  let s = Fmt.str "%a" F.Latency.pp F.Latency.default in
  Alcotest.(check string) "default model"
    "{local-cache=1; remote-cache=30; local-mem=100; remote-mem=250; \
     clean=5; atomic=+15; per-hop=+20}"
    s;
  let flat = Fmt.str "%a" F.Latency.pp F.Latency.flat in
  Alcotest.(check bool) "flat model renders" true
    (String.length flat > 0 && flat.[0] = '{')

let test_topology_pp () =
  Alcotest.(check string) "flat 2"
    "0 1\n1 0"
    (Fmt.str "%a" F.Topology.pp (F.Topology.flat 2));
  Alcotest.(check string) "two-level [1;1]"
    "0 3\n3 0"
    (Fmt.str "%a" F.Topology.pp (F.Topology.two_level [ 1; 1 ]))

(* Edge cases of the hop metric: the diagonal is a zero-cost crossing
   (same machine — no fabric involved, whatever the matrix says
   elsewhere), and an of_matrix path can be arbitrarily long — the
   per-hop surcharge must follow it linearly, not saturate. *)
let test_topology_hop_edges () =
  let m =
    F.Topology.of_matrix
      [| [| 0; 1; 9 |]; [| 1; 0; 1 |]; [| 9; 1; 0 |] |]
  in
  Alcotest.(check int) "diagonal zero" 0 (F.Topology.hops m 2 2);
  Alcotest.(check int) "max-hop path kept" 9 (F.Topology.hops m 0 2);
  (* a remote load over the 9-hop path pays exactly 8 more per_hop
     surcharges than over a 1-hop path *)
  let cost topology src =
    let f =
      F.create ~topology ~seed:1 ~evict_prob:0.0
        [| F.machine "a"; F.machine "b"; F.machine "home" |]
    in
    let x = F.alloc f ~owner:2 in
    let before = F.cycles f in
    ignore (F.load f src x);
    F.cycles f - before
  in
  let far = cost m 0 and near = cost m 1 in
  Alcotest.(check int) "linear in hops"
    (8 * F.Latency.default.F.Latency.per_hop)
    (far - near)

let test_topology_costs_scale () =
  (* the same remote load costs more across the spine *)
  let cost topology =
    let f = F.create ~topology ~seed:1 ~evict_prob:0.0
        [| F.machine "w"; F.machine "x"; F.machine "y"; F.machine "home" |]
    in
    let x = F.alloc f ~owner:3 in
    F.mstore f 3 x 5;
    let before = F.cycles f in
    ignore (F.load f 0 x);
    F.cycles f - before
  in
  let near = cost (F.Topology.flat 4) in
  let far = cost (F.Topology.two_level [ 3; 1 ]) in
  Alcotest.(check bool) "extra hops cost more" true (far > near);
  Alcotest.(check int) "exactly 2 extra hops x per_hop" (2 * 20) (far - near)

let test_topology_local_access_unaffected () =
  let f =
    F.create ~topology:(F.Topology.two_level [ 1; 1 ]) ~seed:1 ~evict_prob:0.0
      [| F.machine "a"; F.machine "b" |]
  in
  let x = F.alloc f ~owner:0 in
  F.lstore f 0 x 1;
  let before = F.cycles f in
  ignore (F.load f 0 x);
  Alcotest.(check int) "local cache hit still 1 cycle" 1 (F.cycles f - before)

(* ------------------------------------------------------------------ *)
(* RAS faults                                                          *)
(* ------------------------------------------------------------------ *)

let prob_msg name p = Printf.sprintf "%s: probability %g not in [0,1]" name p

let test_evict_prob_validation () =
  List.iter
    (fun p ->
      Alcotest.check_raises "create rejects"
        (Invalid_argument (prob_msg "Fabric.create evict_prob" p))
        (fun () -> ignore (F.uniform ~seed:1 ~evict_prob:p 2)))
    [ Float.nan; -0.5; 1.5 ];
  (* the closed boundaries stay legal (evict_prob = 1.0 is load-bearing
     in the deterministic-eviction test above) *)
  ignore (F.uniform ~seed:1 ~evict_prob:0.0 2);
  ignore (F.uniform ~seed:1 ~evict_prob:1.0 2);
  let f = mk () in
  F.set_evict_prob f 1.0;
  F.set_evict_prob f 0.0;
  List.iter
    (fun p ->
      Alcotest.check_raises "set_evict_prob rejects"
        (Invalid_argument (prob_msg "Fabric.set_evict_prob" p))
        (fun () -> F.set_evict_prob f p))
    [ Float.nan; -0.1; 2.0 ]

let test_fault_plan_validation () =
  Alcotest.check_raises "negative retries"
    (Invalid_argument "Faults.plan: retries < 0") (fun () ->
      ignore
        (F.Faults.plan
           ~retry:{ F.Faults.default_retry with F.Faults.retries = -1 }
           ()));
  let p = F.Faults.plan () in
  Alcotest.check_raises "NaN nack_prob"
    (Invalid_argument (prob_msg "Faults.degrade_link" Float.nan))
    (fun () ->
      F.Faults.degrade_link p 0 1 ~nack_prob:Float.nan ~delay_prob:0.0
        ~delay_cycles:0);
  Alcotest.check_raises "equal endpoints"
    (Invalid_argument "Faults.degrade_link: link endpoints equal") (fun () ->
      F.Faults.degrade_link p 1 1 ~nack_prob:0.5 ~delay_prob:0.0
        ~delay_cycles:0);
  Alcotest.check_raises "bad window"
    (Invalid_argument "Faults.down_link: bad cycle window") (fun () ->
      F.Faults.down_link p 0 1 ~from_cycle:10 ~until_cycle:10);
  F.Faults.degrade_link p 0 5 ~nack_prob:0.5 ~delay_prob:0.0 ~delay_cycles:0;
  Alcotest.check_raises "plan vs machine count"
    (Invalid_argument "Fabric.create: fault plan references unknown machine")
    (fun () -> ignore (F.uniform ~seed:1 ~evict_prob:0.0 ~faults:p 2))

(* a 2-machine fabric whose 0<->1 link carries the given standing fault *)
let faulty_fabric ?(nack = 0.0) ?(delay = 0.0) ?(delay_cycles = 0) ?down () =
  let p = F.Faults.plan ~seed:42 () in
  if nack > 0.0 || delay > 0.0 then
    F.Faults.degrade_link p 0 1 ~nack_prob:nack ~delay_prob:delay
      ~delay_cycles;
  (match down with
  | Some (from_cycle, until_cycle) ->
      F.Faults.down_link p 0 1 ~from_cycle ~until_cycle
  | None -> ());
  F.uniform ~seed:7 ~evict_prob:0.0 ~faults:p 2

let test_nack_delivers_error () =
  let f = faulty_fabric ~nack:1.0 () in
  let x = F.alloc f ~owner:1 in
  let before = F.cycles f in
  (match F.load_result f 0 x with
  | Error (F.Faults.Nack { from_m = 0; to_m = 1 }) -> ()
  | _ -> Alcotest.fail "expected a NACK");
  Alcotest.(check int) "NACK charged" (F.Faults.nack_cycles (Option.get (F.faults f)))
    (F.cycles f - before);
  Alcotest.(check int) "fault counted" 1 (F.stats f).F.Stats.faults_injected;
  (* local traffic never crosses the faulted link *)
  (match F.lstore_result f 1 x 5 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "owner-local store crossed no link");
  (* the plain primitives never consult the link table *)
  Alcotest.(check int) "plain load unaffected" 5 (F.load f 0 x)

let test_down_link_times_out () =
  let f = faulty_fabric ~down:(0, 5_000) () in
  let x = F.alloc f ~owner:1 in
  Alcotest.(check bool) "degraded while down" true (F.link_degraded f 0 1);
  (match F.rstore_result f 0 x 5 with
  | Error (F.Faults.Link_timeout { from_m = 0; to_m = 1 }) -> ()
  | _ -> Alcotest.fail "expected a timeout");
  (* burn simulated time past the window: the link heals *)
  F.charge f 10_000;
  Alcotest.(check bool) "healed after window" false (F.link_degraded f 0 1);
  (match F.rstore_result f 0 x 5 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "link recovered");
  Alcotest.(check int) "value arrived" 5 (F.load f 1 x)

let test_delay_charges_then_succeeds () =
  let f = faulty_fabric ~delay:1.0 ~delay_cycles:500 () in
  let x = F.alloc f ~owner:1 in
  let before = F.cycles f in
  (match F.load_result f 0 x with
  | Ok 0 -> ()
  | _ -> Alcotest.fail "delayed load still completes");
  Alcotest.(check bool) "delay charged on top" true
    (F.cycles f - before >= 500);
  Alcotest.(check int) "delay counted as a fault" 1
    (F.stats f).F.Stats.faults_injected

let test_poison_load_and_heal () =
  let f = faulty_fabric () in
  let x = F.alloc f ~owner:1 in
  F.lstore f 1 x 5;
  F.poison f x;
  Alcotest.(check bool) "marked" true (F.poisoned f x);
  (match F.load_result f 0 x with
  | Error (F.Faults.Poisoned { loc }) -> Alcotest.(check int) "loc" x loc
  | _ -> Alcotest.fail "expected poison");
  Alcotest.(check int) "observation counted" 1
    (F.stats f).F.Stats.faults_injected;
  (* a store of fresh data heals the line *)
  F.lstore f 1 x 7;
  Alcotest.(check bool) "healed" false (F.poisoned f x);
  (match F.load_result f 0 x with
  | Ok 7 -> ()
  | _ -> Alcotest.fail "healed load");
  (* an rflush write-back of a dirty copy heals too *)
  F.poison f x;
  (match F.rflush_result f 1 x with
  | Ok () -> ()
  | _ -> Alcotest.fail "rflush");
  Alcotest.(check bool) "write-back healed" false (F.poisoned f x)

let test_poison_atomics_abort () =
  let f = faulty_fabric () in
  let x = F.alloc f ~owner:1 in
  F.mstore f 1 x 5;
  F.poison f x;
  (match F.faa_result f 0 x 3 with
  | Error (F.Faults.Poisoned _) -> ()
  | _ -> Alcotest.fail "faa must observe poison");
  (match F.cas_result f 0 x ~expected:5 ~desired:9 ~kind:Cxl0.Label.R with
  | Error (F.Faults.Poisoned _) -> ()
  | _ -> Alcotest.fail "cas must observe poison");
  (* neither RMW mutated: heal and look *)
  F.mstore f 1 x 5;
  Alcotest.(check int) "value untouched by aborted RMWs" 5 (F.load f 0 x)

let test_poison_requires_plan () =
  let f = mk () in
  let x = F.alloc f ~owner:1 in
  Alcotest.check_raises "no plan"
    (Invalid_argument "Fabric.poison: no fault plan attached") (fun () ->
      F.poison f x)

let test_crash_heals_volatile_owner () =
  let p = F.Faults.plan ~seed:1 () in
  let f = F.uniform ~seed:7 ~evict_prob:0.0 ~volatile:true ~faults:p 2 in
  let x = F.alloc f ~owner:1 in
  F.mstore f 1 x 5;
  F.poison f x;
  F.crash f 1;
  (* the volatile owner's crash re-zeroed the line: fresh data, no
     poison *)
  Alcotest.(check bool) "healed by re-init" false (F.poisoned f x);
  Alcotest.(check int) "zeroed" 0 (F.load f 0 x)

(* ------------------------------------------------------------------ *)
(* Batched issue/retire vs one-by-one primitives                       *)
(* ------------------------------------------------------------------ *)

(* The batch path must be mechanically identical to issuing the same
   primitives in submission order: same values retired, same cycle
   charges, same stats, same final configuration — under capacity
   pressure (cache_capacity 2 keeps the eviction rings busy) and across
   crashes between batches. *)

type bop =
  | BLoad of int * int
  | BL of int * int * int
  | BR of int * int * int
  | BM of int * int * int
  | BLF of int * int
  | BRF of int * int
  | BFaa of int * int * int
  | BCas of int * int * int * int * Cxl0.Label.store_kind

let random_bop rng ~n ~locs =
  let m () = Random.State.int rng n in
  let x () = Random.State.int rng locs in
  let v () = Random.State.int rng 4 in
  let kind () =
    match Random.State.int rng 3 with
    | 0 -> Cxl0.Label.L
    | 1 -> Cxl0.Label.R
    | _ -> Cxl0.Label.M
  in
  match Random.State.int rng 8 with
  | 0 -> BLoad (m (), x ())
  | 1 -> BL (m (), x (), v ())
  | 2 -> BR (m (), x (), v ())
  | 3 -> BM (m (), x (), v ())
  | 4 -> BLF (m (), x ())
  | 5 -> BRF (m (), x ())
  | 6 -> BFaa (m (), x (), v ())
  | _ -> BCas (m (), x (), v (), v (), kind ())

let prop_batch_equiv =
  QCheck.Test.make ~name:"run_batch == primitives one by one" ~count:60
    QCheck.(pair small_nat (int_bound 40))
    (fun (seed, segments) ->
      let n = 3 and nlocs = 5 in
      let mk_f () =
        let f = F.uniform ~seed ~evict_prob:0.0 ~cache_capacity:2 n in
        for i = 0 to nlocs - 1 do
          ignore (F.alloc f ~owner:(i mod n))
        done;
        f
      in
      let fa = mk_f () and fb = mk_f () in
      let rng = Random.State.make [| seed; segments; 99 |] in
      (* capacity 1 forces the slot arrays to grow mid-run too *)
      let b = F.batch_create ~capacity:1 () in
      let ok = ref true in
      for _ = 1 to segments do
        (match Random.State.int rng 8 with
        | 0 ->
            let m = Random.State.int rng n in
            F.crash fa m;
            F.crash fb m
        | 1 ->
            let m = Random.State.int rng n
            and x = Random.State.int rng nlocs in
            F.evict_loc fa m x;
            F.evict_loc fb m x
        | _ ->
            let len = 1 + Random.State.int rng 6 in
            let ops = List.init len (fun _ -> random_bop rng ~n ~locs:nlocs) in
            F.batch_clear b;
            let slots =
              List.map
                (function
                  | BLoad (m, x) -> Some (F.batch_load b m x)
                  | BL (m, x, v) ->
                      F.batch_lstore b m x v;
                      None
                  | BR (m, x, v) ->
                      F.batch_rstore b m x v;
                      None
                  | BM (m, x, v) ->
                      F.batch_mstore b m x v;
                      None
                  | BLF (m, x) ->
                      F.batch_lflush b m x;
                      None
                  | BRF (m, x) ->
                      F.batch_rflush b m x;
                      None
                  | BFaa (m, x, v) -> Some (F.batch_faa b m x v)
                  | BCas (m, x, e, d, k) ->
                      Some (F.batch_cas b m x ~expected:e ~desired:d ~kind:k))
                ops
            in
            F.run_batch fa b;
            List.iter2
              (fun op slot ->
                let expect =
                  match op with
                  | BLoad (m, x) -> Some (F.load fb m x)
                  | BL (m, x, v) ->
                      F.lstore fb m x v;
                      None
                  | BR (m, x, v) ->
                      F.rstore fb m x v;
                      None
                  | BM (m, x, v) ->
                      F.mstore fb m x v;
                      None
                  | BLF (m, x) ->
                      F.lflush fb m x;
                      None
                  | BRF (m, x) ->
                      F.rflush fb m x;
                      None
                  | BFaa (m, x, v) -> Some (F.faa fb m x v)
                  | BCas (m, x, e, d, k) ->
                      Some
                        (if F.cas fb m x ~expected:e ~desired:d ~kind:k then 1
                         else 0)
                in
                match (expect, slot) with
                | Some r, Some s -> if F.batch_result b s <> r then ok := false
                | None, None -> ()
                | _ -> ok := false)
              ops slots);
        if F.cycles fa <> F.cycles fb then ok := false;
        if not (Cxl0.Config.equal (F.to_config fa) (F.to_config fb)) then
          ok := false;
        if not (F.check_coherence fa && F.check_coherence fb) then ok := false;
        if F.Stats.to_json (F.stats fa) <> F.Stats.to_json (F.stats fb) then
          ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Allocation discipline                                               *)
(* ------------------------------------------------------------------ *)

(* The flat data plane's contract: steady-state primitives touch only
   unboxed int arrays — no per-operation minor allocation.  A warm-up
   pass absorbs one-time growth (rings, holder counters); the measured
   window then holds a hard budget per primitive.  The budget is loose
   (0.5 words) against compiler-version noise; the regression this
   guards against — a boxed record or closure sneaking back onto the hot
   path — costs several words per op and clears it by an order of
   magnitude. *)
let test_gc_pressure () =
  let f = mk ~n:2 () in
  let x = F.alloc f ~owner:1 in
  for i = 1 to 100 do
    F.lstore f 0 x i;
    ignore (F.load f 1 x);
    ignore (F.faa f 0 x 1);
    F.lflush f 0 x;
    F.rflush f 0 x
  done;
  let iters = 10_000 in
  let w0 = Gc.minor_words () in
  for i = 1 to iters do
    F.lstore f 0 x i;
    ignore (F.load f 1 x);
    ignore (F.faa f 0 x 1);
    F.lflush f 0 x;
    F.rflush f 0 x
  done;
  let per_prim = (Gc.minor_words () -. w0) /. float_of_int (5 * iters) in
  Alcotest.(check bool)
    (Printf.sprintf "minor words per primitive (%.4f) within budget" per_prim)
    true (per_prim <= 0.5)

(* ------------------------------------------------------------------ *)
(* Cross-validation against the formal semantics                       *)
(* ------------------------------------------------------------------ *)

(* Drive the same random primitive sequence through the fabric and
   through Cxl0.Semantics (mirroring the fabric's *forcing* flushes with
   the equivalent tau-steps) and compare configurations at every step. *)

type xop =
  | XL of int * int * int
  | XR of int * int * int
  | XM of int * int * int
  | XLoad of int * int
  | XLFlush of int * int
  | XRFlush of int * int
  | XEvict of int * int
  | XCrash of int

let random_xop rng ~n ~locs =
  let m () = Random.State.int rng n in
  let x () = Random.State.int rng locs in
  let v () = Random.State.int rng 3 in
  match Random.State.int rng 10 with
  | 0 | 1 -> XL (m (), x (), v ())
  | 2 -> XR (m (), x (), v ())
  | 3 -> XM (m (), x (), v ())
  | 4 | 5 -> XLoad (m (), x ())
  | 6 -> XLFlush (m (), x ())
  | 7 -> XRFlush (m (), x ())
  | 8 -> XEvict (m (), x ())
  | _ -> XCrash (m ())

(* Mirror of the fabric's forcing flush/eviction on the formal side. *)
let mirror_force sys cfg i l ~vertical_all =
  match Cxl0.Config.cache_get cfg i l with
  | None -> cfg
  | Some _ ->
      if i = Cxl0.Loc.owner l then
        Option.value ~default:cfg (Cxl0.Semantics.prop_cache_mem sys cfg l)
      else
        let cfg =
          Option.value ~default:cfg
            (Cxl0.Semantics.prop_cache_cache sys cfg i l)
        in
        if vertical_all then
          Option.value ~default:cfg (Cxl0.Semantics.prop_cache_mem sys cfg l)
        else cfg

let prop_cross_validation =
  QCheck.Test.make ~name:"fabric == formal semantics, step by step" ~count:80
    QCheck.(pair small_nat (int_bound 80))
    (fun (seed, len) ->
      let n = 3 and nlocs = 4 in
      let f = F.uniform ~seed ~evict_prob:0.0 ~cache_capacity:1024 n in
      (* spread ownership *)
      for i = 0 to nlocs - 1 do
        ignore (F.alloc f ~owner:(i mod n))
      done;
      let sys = F.to_system f in
      let rng = Random.State.make [| seed; len |] in
      let cfg = ref Cxl0.Config.init in
      let ok = ref true in
      for _ = 1 to len do
        let op = random_xop rng ~n ~locs:nlocs in
        let l x = F.to_loc f x in
        (match op with
        | XL (i, x, v) ->
            F.lstore f i x v;
            cfg := Cxl0.Semantics.lstore sys !cfg i (l x) v
        | XR (i, x, v) ->
            F.rstore f i x v;
            cfg := Cxl0.Semantics.rstore sys !cfg i (l x) v
        | XM (i, x, v) ->
            F.mstore f i x v;
            cfg := Cxl0.Semantics.mstore sys !cfg i (l x) v
        | XLoad (i, x) ->
            let v = F.load f i x in
            let v', cfg' = Cxl0.Semantics.load sys !cfg i (l x) in
            if v <> v' then ok := false;
            cfg := cfg'
        | XLFlush (i, x) ->
            F.lflush f i x;
            cfg := mirror_force sys !cfg i (l x) ~vertical_all:false
        | XRFlush (i, x) ->
            F.rflush f i x;
            (* forcing rflush: drain every holder of x *)
            let rec drain cfg =
              match Cxl0.Config.cached_value sys cfg (l x) with
              | None -> cfg
              | Some (j, _) -> drain (mirror_force sys cfg j (l x) ~vertical_all:true)
            in
            cfg := drain !cfg
        | XEvict (i, x) ->
            F.evict_loc f i x;
            cfg := mirror_force sys !cfg i (l x) ~vertical_all:false
        | XCrash i ->
            F.crash f i;
            cfg := Cxl0.Semantics.crash sys !cfg i);
        if not (Cxl0.Config.equal (F.to_config f) !cfg) then ok := false;
        if not (F.check_coherence f) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "fabric"
    [
      ( "construction",
        [
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "alloc" `Quick test_alloc;
          Alcotest.test_case "alloc growth" `Quick test_alloc_growth;
          Alcotest.test_case "bad loc" `Quick test_bad_loc;
          Alcotest.test_case "uid" `Quick test_uid_unique;
        ] );
      ( "primitives",
        [
          Alcotest.test_case "initial zero" `Quick test_load_initial_zero;
          Alcotest.test_case "lstore/load" `Quick test_lstore_then_load;
          Alcotest.test_case "rstore placement" `Quick test_rstore_placement;
          Alcotest.test_case "mstore placement" `Quick test_mstore_placement;
          Alcotest.test_case "load copies" `Quick test_load_copies_into_reader;
          Alcotest.test_case "flush forcing" `Quick test_flush_forcing;
          Alcotest.test_case "owner lflush" `Quick test_lflush_by_owner_writes_back;
          Alcotest.test_case "clean flush" `Quick test_flush_clean_noop;
        ] );
      ( "atomics",
        [
          Alcotest.test_case "faa" `Quick test_faa;
          Alcotest.test_case "cas" `Quick test_cas_success_failure;
          Alcotest.test_case "cas kind M" `Quick test_cas_kind_m_persists;
        ] );
      ( "replacement",
        [
          Alcotest.test_case "capacity eviction" `Quick test_capacity_eviction;
          Alcotest.test_case "cascade" `Quick test_eviction_cascade_vertical;
          Alcotest.test_case "drain" `Quick test_drain;
          Alcotest.test_case "maybe_evict" `Quick test_maybe_evict_deterministic;
        ] );
      ( "crash",
        [
          Alcotest.test_case "nv" `Quick test_crash_nv;
          Alcotest.test_case "nv after flush" `Quick test_crash_nv_after_flush;
          Alcotest.test_case "volatile" `Quick test_crash_volatile;
          Alcotest.test_case "spares others" `Quick test_crash_spares_others;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "stats" `Quick test_stats_counting;
          Alcotest.test_case "latency ordering" `Quick test_latency_ordering;
          Alcotest.test_case "diff/reset" `Quick test_stats_diff_reset;
        ] );
      ( "topology",
        [
          Alcotest.test_case "flat" `Quick test_topology_flat;
          Alcotest.test_case "two level" `Quick test_topology_two_level;
          Alcotest.test_case "validation" `Quick test_topology_validation;
          Alcotest.test_case "latency pp" `Quick test_latency_pp;
          Alcotest.test_case "topology pp" `Quick test_topology_pp;
          Alcotest.test_case "hop edges" `Quick test_topology_hop_edges;
          Alcotest.test_case "costs scale with hops" `Quick
            test_topology_costs_scale;
          Alcotest.test_case "local unaffected" `Quick
            test_topology_local_access_unaffected;
        ] );
      ( "faults",
        [
          Alcotest.test_case "evict_prob validation" `Quick
            test_evict_prob_validation;
          Alcotest.test_case "plan validation" `Quick
            test_fault_plan_validation;
          Alcotest.test_case "nack" `Quick test_nack_delivers_error;
          Alcotest.test_case "down link" `Quick test_down_link_times_out;
          Alcotest.test_case "delay" `Quick test_delay_charges_then_succeeds;
          Alcotest.test_case "poison + heal" `Quick test_poison_load_and_heal;
          Alcotest.test_case "poison atomics" `Quick test_poison_atomics_abort;
          Alcotest.test_case "poison needs plan" `Quick
            test_poison_requires_plan;
          Alcotest.test_case "crash heals volatile owner" `Quick
            test_crash_heals_volatile_owner;
        ] );
      ( "batching",
        [
          QCheck_alcotest.to_alcotest prop_batch_equiv;
          Alcotest.test_case "gc pressure" `Quick test_gc_pressure;
        ] );
      ("cross-validation", [ QCheck_alcotest.to_alcotest prop_cross_validation ]);
    ]
