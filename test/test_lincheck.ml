(* The (durable) linearizability checker on hand-crafted histories:
   well-formedness, op extraction, the Wing–Gong search (including
   pending-operation completion and omission), and the durable wrapper. *)

open Lincheck

let inv tid op args = History.Inv { tid; op; args }
let res tid r = History.Res { tid; ret = History.Ret r }
let crash m = History.Crash { machine = m }

(* ------------------------------------------------------------------ *)
(* History plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let test_well_formed () =
  Alcotest.(check bool) "alternating ok" true
    (History.well_formed [ inv 0 "read" []; res 0 1; inv 0 "read" []; res 0 2 ]);
  Alcotest.(check bool) "pending tail ok" true
    (History.well_formed [ inv 0 "read" [] ]);
  Alcotest.(check bool) "double invoke bad" false
    (History.well_formed [ inv 0 "read" []; inv 0 "read" [] ]);
  Alcotest.(check bool) "orphan response bad" false
    (History.well_formed [ res 0 1 ]);
  Alcotest.(check bool) "crashes transparent" true
    (History.well_formed [ inv 0 "read" []; crash 1; res 0 1 ])

let test_ops_extraction () =
  let h =
    [ inv 0 "write" [ 1 ]; inv 1 "read" []; res 0 0; crash 0; inv 2 "read" [] ]
  in
  let ops = History.ops h in
  Alcotest.(check int) "three ops" 3 (List.length ops);
  let o0 = List.nth ops 0 and o1 = List.nth ops 1 and o2 = List.nth ops 2 in
  Alcotest.(check (option int)) "completed" (Some 0) (History.ret_int o0);
  Alcotest.(check (option int)) "pending" None (History.ret_int o1);
  Alcotest.(check (option int)) "pending tail" None (History.ret_int o2);
  Alcotest.(check bool) "inv order" true
    (o0.History.inv_at < o1.History.inv_at && o1.History.inv_at < o2.History.inv_at)

let test_strip_and_count () =
  let h = [ inv 0 "read" []; crash 0; res 0 0; crash 1 ] in
  Alcotest.(check int) "two crashes" 2 (History.crash_count h);
  Alcotest.(check int) "stripped" 2 (List.length (History.strip_crashes h))

let test_ops_rejects_ill_formed () =
  Alcotest.check_raises "invalid" (Invalid_argument "History.ops: ill-formed history")
    (fun () -> ignore (History.ops [ res 0 1 ]))

(* ------------------------------------------------------------------ *)
(* Sequential specs                                                    *)
(* ------------------------------------------------------------------ *)

let test_spec_conforms () =
  Alcotest.(check bool) "register trace" true
    (Spec.conforms Specs.register
       [ ("read", [], 0); ("write", [ 5 ], 0); ("read", [], 5) ]);
  Alcotest.(check bool) "register bad read" false
    (Spec.conforms Specs.register [ ("write", [ 5 ], 0); ("read", [], 4) ]);
  Alcotest.(check bool) "counter" true
    (Spec.conforms Specs.counter
       [ ("inc", [], 0); ("inc", [], 1); ("get", [], 2) ]);
  Alcotest.(check bool) "stack lifo" true
    (Spec.conforms Specs.stack
       [
         ("push", [ 1 ], 0); ("push", [ 2 ], 0); ("pop", [], 2); ("pop", [], 1);
         ("pop", [], Spec.absent);
       ]);
  Alcotest.(check bool) "stack not fifo" false
    (Spec.conforms Specs.stack
       [ ("push", [ 1 ], 0); ("push", [ 2 ], 0); ("pop", [], 1) ]);
  Alcotest.(check bool) "queue fifo" true
    (Spec.conforms Specs.queue
       [ ("enq", [ 1 ], 0); ("enq", [ 2 ], 0); ("deq", [], 1); ("deq", [], 2) ]);
  Alcotest.(check bool) "set" true
    (Spec.conforms Specs.set
       [
         ("add", [ 3 ], 1); ("add", [ 3 ], 0); ("contains", [ 3 ], 1);
         ("remove", [ 3 ], 1); ("contains", [ 3 ], 0); ("remove", [ 3 ], 0);
       ]);
  Alcotest.(check bool) "map" true
    (Spec.conforms Specs.map
       [
         ("get", [ 1 ], Spec.absent); ("put", [ 1; 9 ], 0); ("get", [ 1 ], 9);
         ("put", [ 1; 8 ], 0); ("get", [ 1 ], 8); ("del", [ 1 ], 1);
         ("get", [ 1 ], Spec.absent); ("del", [ 1 ], 0);
       ])

let test_absent_constant_agrees () =
  Alcotest.(check int) "dstruct sentinel = spec sentinel" Spec.absent
    Dstruct.Absent.absent

(* ------------------------------------------------------------------ *)
(* Linearizability search                                              *)
(* ------------------------------------------------------------------ *)

let lin spec h =
  match Check.linearizable spec (History.ops h) with
  | Ok o -> o.Check.ok
  | Error e -> Alcotest.failf "unexpected rejection: %a" Check.pp_error e

let test_lin_concurrent_register () =
  (* w(1) overlaps r->1 and r->0: both readable depending on order *)
  let h = [ inv 0 "write" [ 1 ]; inv 1 "read" []; res 1 1; res 0 0 ] in
  Alcotest.(check bool) "r=1 during write ok" true (lin Specs.register h);
  let h = [ inv 0 "write" [ 1 ]; inv 1 "read" []; res 1 0; res 0 0 ] in
  Alcotest.(check bool) "r=0 during write ok" true (lin Specs.register h)

let test_lin_realtime_violation () =
  (* write(1) fully precedes read->0: forbidden *)
  let h = [ inv 0 "write" [ 1 ]; res 0 0; inv 1 "read" []; res 1 0 ] in
  Alcotest.(check bool) "stale read flagged" false (lin Specs.register h)

let test_lin_fig5_anomaly () =
  (* the Fig. 5 inconsistency as a register history: r1=1 then r2=0 *)
  let h =
    [
      inv 0 "write" [ 1 ]; res 0 0;
      inv 0 "read" []; res 0 1;
      inv 0 "read" []; res 0 0;
    ]
  in
  Alcotest.(check bool) "non-monotone reads flagged" false
    (lin Specs.register h)

let test_lin_queue_fifo_violation () =
  let h =
    [
      inv 0 "enq" [ 1 ]; res 0 0;
      inv 0 "enq" [ 2 ]; res 0 0;
      inv 1 "deq" []; res 1 2;
      inv 1 "deq" []; res 1 1;
    ]
  in
  Alcotest.(check bool) "out-of-order dequeue flagged" false (lin Specs.queue h)

let test_lin_pending_completion () =
  (* a pending enq's value is dequeued: checker must complete it *)
  let h = [ inv 0 "enq" [ 7 ]; inv 1 "deq" []; res 1 7 ] in
  Alcotest.(check bool) "pending completed" true (lin Specs.queue h)

let test_lin_pending_omission () =
  (* a pending push never observed: checker must be able to omit it *)
  let h = [ inv 0 "push" [ 7 ]; inv 1 "pop" []; res 1 Spec.absent ] in
  Alcotest.(check bool) "pending omitted" true (lin Specs.stack h)

let test_lin_pending_cannot_rescue () =
  (* a pending write cannot explain a *completed* earlier contradiction:
     read->5 with no write(5) anywhere *)
  let h = [ inv 0 "read" []; res 0 5 ] in
  Alcotest.(check bool) "impossible value flagged" false (lin Specs.register h)

let test_lin_counter_concurrent_incs () =
  (* two overlapping incs both returning 0 is NOT linearizable (FAA) *)
  let h = [ inv 0 "inc" []; inv 1 "inc" []; res 0 0; res 1 0 ] in
  Alcotest.(check bool) "duplicate faa result flagged" false
    (lin Specs.counter h);
  let h = [ inv 0 "inc" []; inv 1 "inc" []; res 0 1; res 1 0 ] in
  Alcotest.(check bool) "distinct results fine" true (lin Specs.counter h)

let test_lin_set_semantics () =
  let h =
    [
      inv 0 "add" [ 2 ]; res 0 1;
      inv 1 "add" [ 2 ]; res 1 1;
    ]
  in
  Alcotest.(check bool) "both adds succeeding flagged" false (lin Specs.set h)

let test_lin_empty_history () =
  Alcotest.(check bool) "empty is linearizable" true (lin Specs.register [])

let test_witness_is_valid () =
  let h =
    [
      inv 0 "enq" [ 1 ]; res 0 0; inv 1 "deq" []; res 1 1;
      inv 0 "deq" []; res 0 Spec.absent;
    ]
  in
  let out =
    match Check.linearizable Specs.queue (History.ops h) with
    | Ok o -> o
    | Error e -> Alcotest.failf "unexpected rejection: %a" Check.pp_error e
  in
  Alcotest.(check bool) "ok" true out.Check.ok;
  Alcotest.(check int) "all completed ops in witness" 3
    (List.length out.Check.witness);
  (* and the witness results replay against the spec *)
  let trace =
    List.map
      (fun (o, r) -> (o.History.name, o.History.args, r))
      out.Check.witness
  in
  Alcotest.(check bool) "replays" true (Spec.conforms Specs.queue trace)

(* ------------------------------------------------------------------ *)
(* Durable wrapper                                                     *)
(* ------------------------------------------------------------------ *)

let test_durable_crash_transparent () =
  (* crash events do not break an otherwise linearizable history *)
  let h =
    [
      inv 0 "write" [ 1 ]; res 0 0; crash 1; inv 0 "read" []; res 0 1;
    ]
  in
  let v = Durable.check Specs.register h in
  Alcotest.(check bool) "durable" true v.Durable.durable;
  Alcotest.(check int) "crash counted" 1 v.Durable.crash_events

let test_durable_detects_loss () =
  (* completed write lost across a crash *)
  let h =
    [ inv 0 "write" [ 1 ]; res 0 0; crash 1; inv 0 "read" []; res 0 0 ]
  in
  Alcotest.(check bool) "loss flagged" false
    (Durable.check Specs.register h).Durable.durable

let test_durable_pending_at_crash_ok () =
  (* write pending at crash; post-crash read sees 0: allowed (omitted) *)
  let h = [ inv 0 "write" [ 1 ]; crash 0; inv 1 "read" []; res 1 0 ] in
  Alcotest.(check bool) "omission allowed" true
    (Durable.check Specs.register h).Durable.durable;
  (* ... and seeing 1 is also allowed (completed) *)
  let h = [ inv 0 "write" [ 1 ]; crash 0; inv 1 "read" []; res 1 1 ] in
  Alcotest.(check bool) "completion allowed" true
    (Durable.check Specs.register h).Durable.durable

let test_durable_ill_formed () =
  let v = Durable.check Specs.register [ res 0 1 ] in
  Alcotest.(check bool) "ill-formed not durable" false v.Durable.durable

(* ------------------------------------------------------------------ *)
(* Oversized histories: typed rejection, not invalid_arg               *)
(* ------------------------------------------------------------------ *)

(* [n] sequential completed writes by thread 0. *)
let long_history n =
  List.concat (List.init n (fun _ -> [ inv 0 "write" [ 1 ]; res 0 0 ]))

let test_too_long_rejected () =
  let n = Check.max_ops + 1 in
  (match Check.linearizable Specs.register (History.ops (long_history n)) with
  | Ok _ -> Alcotest.fail "oversized history accepted"
  | Error (Check.History_too_long { length; max_ops }) ->
      Alcotest.(check int) "reported length" n length;
      Alcotest.(check int) "reported bound" Check.max_ops max_ops);
  (* at the bound it still decides *)
  match
    Check.linearizable Specs.register (History.ops (long_history Check.max_ops))
  with
  | Ok o -> Alcotest.(check bool) "at bound ok" true o.Check.ok
  | Error e -> Alcotest.failf "at-bound rejection: %a" Check.pp_error e

let test_too_long_durable_skipped () =
  let v = Durable.check Specs.register (long_history (Check.max_ops + 1)) in
  Alcotest.(check bool) "undecided, not durable" false v.Durable.durable;
  match v.Durable.skipped with
  | Some (Check.History_too_long _) -> ()
  | _ -> Alcotest.fail "expected a History_too_long skip"

(* ------------------------------------------------------------------ *)
(* Typed corruption and verdict rendering                              *)
(* ------------------------------------------------------------------ *)

let test_corrupt_never_durable () =
  (* a Corrupt response matches no specification result, whatever the
     object: the checker must flag the history *)
  let h =
    [ inv 0 "read" []; History.Res { tid = 0; ret = History.Corrupt } ]
  in
  let o = List.hd (History.ops h) in
  Alcotest.(check bool) "op is corrupt" true (History.is_corrupt o);
  Alcotest.(check (option int)) "no integer result" None (History.ret_int o);
  Alcotest.(check bool) "not durable" false
    (Durable.check Specs.register h).Durable.durable

let test_minus_99_is_an_ordinary_value () =
  (* -99 used to be the harness's corruption sentinel; with the typed
     [Corrupt] result it must behave like any other integer *)
  let h =
    [ inv 0 "write" [ -99 ]; res 0 0; inv 0 "read" []; res 0 (-99) ]
  in
  Alcotest.(check bool) "durable" true
    (Durable.check Specs.register h).Durable.durable

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_pp_verdict_branches () =
  let render v = Fmt.str "%a" Durable.pp_verdict v in
  (* durable *)
  let ok =
    render
      (Durable.check ~provenance:"cfg-42" Specs.register
         [ inv 0 "write" [ 1 ]; res 0 0 ])
  in
  Alcotest.(check bool) "durable branch" true
    (contains ~sub:"durably linearizable" ok);
  Alcotest.(check bool) "provenance shown" true (contains ~sub:"[cfg-42]" ok);
  (* violation: includes the history *)
  let bad =
    render
      (Durable.check Specs.register
         [ inv 0 "write" [ 1 ]; res 0 0; crash 1; inv 0 "read" []; res 0 0 ])
  in
  Alcotest.(check bool) "violation branch" true
    (contains ~sub:"NOT durably linearizable" bad);
  Alcotest.(check bool) "history printed" true (contains ~sub:"history:" bad);
  Alcotest.(check bool) "no provenance marker" false
    (contains ~sub:"[cfg-42]" bad);
  (* skipped *)
  let skipped =
    render
      (Durable.check ~provenance:"cfg-7" Specs.register
         (long_history (Check.max_ops + 1)))
  in
  Alcotest.(check bool) "undecided branch" true
    (contains ~sub:"durability undecided" skipped);
  Alcotest.(check bool) "skip reason" true (contains ~sub:"62" skipped);
  Alcotest.(check bool) "provenance on skip" true
    (contains ~sub:"[cfg-7]" skipped)

let () =
  Alcotest.run "lincheck"
    [
      ( "history",
        [
          Alcotest.test_case "well_formed" `Quick test_well_formed;
          Alcotest.test_case "ops extraction" `Quick test_ops_extraction;
          Alcotest.test_case "strip/count" `Quick test_strip_and_count;
          Alcotest.test_case "ill-formed rejected" `Quick
            test_ops_rejects_ill_formed;
        ] );
      ( "specs",
        [
          Alcotest.test_case "conforms" `Quick test_spec_conforms;
          Alcotest.test_case "absent constant" `Quick
            test_absent_constant_agrees;
        ] );
      ( "linearizable",
        [
          Alcotest.test_case "concurrent register" `Quick
            test_lin_concurrent_register;
          Alcotest.test_case "real-time violation" `Quick
            test_lin_realtime_violation;
          Alcotest.test_case "fig5 anomaly" `Quick test_lin_fig5_anomaly;
          Alcotest.test_case "queue fifo violation" `Quick
            test_lin_queue_fifo_violation;
          Alcotest.test_case "pending completion" `Quick
            test_lin_pending_completion;
          Alcotest.test_case "pending omission" `Quick test_lin_pending_omission;
          Alcotest.test_case "impossible value" `Quick
            test_lin_pending_cannot_rescue;
          Alcotest.test_case "counter faa" `Quick
            test_lin_counter_concurrent_incs;
          Alcotest.test_case "set add-add" `Quick test_lin_set_semantics;
          Alcotest.test_case "empty" `Quick test_lin_empty_history;
          Alcotest.test_case "witness validity" `Quick test_witness_is_valid;
        ] );
      ( "durable",
        [
          Alcotest.test_case "crash transparent" `Quick
            test_durable_crash_transparent;
          Alcotest.test_case "detects loss" `Quick test_durable_detects_loss;
          Alcotest.test_case "pending at crash" `Quick
            test_durable_pending_at_crash_ok;
          Alcotest.test_case "ill-formed" `Quick test_durable_ill_formed;
          Alcotest.test_case "too-long rejected" `Quick test_too_long_rejected;
          Alcotest.test_case "too-long skipped in durable" `Quick
            test_too_long_durable_skipped;
        ] );
      ( "corrupt & rendering",
        [
          Alcotest.test_case "corrupt never durable" `Quick
            test_corrupt_never_durable;
          Alcotest.test_case "-99 is an ordinary value" `Quick
            test_minus_99_is_an_ordinary_value;
          Alcotest.test_case "pp_verdict branches" `Quick
            test_pp_verdict_branches;
        ] );
    ]
