(* The corpus differential gate: replay every banked counterexample in
   corpus/ and compare each file's full outcome — the rendered history,
   the rendered oracle verdict, and whether the oracle was satisfied —
   against the blessed fingerprints in corpus/EXPECTED_VERDICTS.txt.

   The corpus is the ready-made oracle for refactors of the run stack:
   any change to scheduling, the transformations, or the checkers that
   alters even one recorded history or verdict shows up as a fingerprint
   mismatch here.  To re-bless after an *intentional* behaviour change,
   run with CORPUS_BLESS=1 in the environment:

     CORPUS_BLESS=1 dune exec test/test_corpus_replay.exe

   which rewrites EXPECTED_VERDICTS.txt in place (and still fails the
   run if a corpus file no longer parses). *)

(* dune runs tests from _build/default/test; the corpus lives in the
   source tree, so walk up until we find it *)
let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "corpus") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let expected_file root = Filename.concat root "corpus/EXPECTED_VERDICTS.txt"

(* One line per corpus entry: file name, whether the oracle was
   satisfied, and an MD5 fingerprint of the rendered history + verdict
   (the full strings are long; the fingerprint pins them exactly). *)
let fingerprint (c : Harness.Workload.config) : string * string =
  let history, verdict, ok = Fuzz.Campaign.replay c in
  let rendered = Fmt.str "%a@.%s" Lincheck.History.pp history verdict in
  (string_of_bool ok, Digest.to_hex (Digest.string rendered))

let replay_all root =
  let dir = Filename.concat root "corpus" in
  List.map
    (fun (path, loaded) ->
      match loaded with
      | Error e ->
          Alcotest.failf "corpus file %s does not parse: %s" path
            (Harness.Codec.error_to_string e)
      | Ok c ->
          let ok, md5 = fingerprint c in
          Printf.sprintf "%s %s %s" (Filename.basename path) ok md5)
    (Fuzz.Corpus.load_all dir)

let bless root lines =
  let oc = open_out (expected_file root) in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        "# <corpus file> <oracle satisfied> <md5 of rendered \
         history+verdict>\n\
         # regenerate with: CORPUS_BLESS=1 dune exec \
         test/test_corpus_replay.exe\n";
      List.iter (fun l -> output_string oc (l ^ "\n")) lines)

let load_expected root =
  let ic = open_in (expected_file root) in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | l when String.length l = 0 || l.[0] = '#' -> go acc
        | l -> go (l :: acc)
      in
      go [])

let test_corpus_replays_identical () =
  let root =
    match repo_root () with
    | Some r -> r
    | None -> Alcotest.fail "cannot locate the corpus/ directory"
  in
  let actual = replay_all root in
  Alcotest.(check bool) "corpus is not empty" true (actual <> []);
  if Sys.getenv_opt "CORPUS_BLESS" <> None then bless root actual
  else begin
    if not (Sys.file_exists (expected_file root)) then
      Alcotest.fail
        "corpus/EXPECTED_VERDICTS.txt missing — bless it with CORPUS_BLESS=1";
    let expected = load_expected root in
    (* compare as whole line sets, reporting the first divergence by name *)
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun l ->
        match String.split_on_char ' ' l with
        | name :: rest -> Hashtbl.replace tbl name (String.concat " " rest)
        | [] -> ())
      expected;
    List.iter
      (fun l ->
        match String.split_on_char ' ' l with
        | name :: rest -> (
            let got = String.concat " " rest in
            match Hashtbl.find_opt tbl name with
            | None ->
                Alcotest.failf "%s: not in EXPECTED_VERDICTS.txt (new corpus \
                                entry? bless with CORPUS_BLESS=1)" name
            | Some want ->
                if got <> want then
                  Alcotest.failf
                    "%s: replay diverged from the blessed verdict\n\
                     expected: %s\n\
                     got:      %s" name want got)
        | [] -> ())
      actual;
    Alcotest.(check int) "every blessed entry still present"
      (List.length expected) (List.length actual)
  end

let () =
  Alcotest.run "corpus-replay"
    [
      ( "differential",
        [
          Alcotest.test_case "every corpus verdict identical" `Quick
            test_corpus_replays_identical;
        ] );
    ]
