(* RAS fault injection end-to-end: fault envelopes over the workload
   harness, FliT's degraded-mode fallback, codec round-trips for fault
   specs, and the generator/shrinker integration. *)

module W = Harness.Workload
module F = Fabric
module G = Fuzz.Gen
module H = Lincheck.History

let base kind transform =
  { (W.default_config kind transform) with W.evict_prob = 0.0 }

let degrade ?(nack = 0.2) ?(delay = 0.1) m1 m2 =
  W.Degrade_link { m1; m2; nack_prob = nack; delay_prob = delay;
                   delay_cycles = 40 }

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Envelopes over the harness                                          *)
(* ------------------------------------------------------------------ *)

let test_transient_durable () =
  (* both worker<->home links mildly degraded: the retry policy absorbs
     the NACKs (or surfaces clean Faulted aborts) and durability holds *)
  let c =
    { (base Harness.Objects.Counter Flit.Registry.alg3_rstore) with
      W.seed = 5;
      ops_per_thread = 4;
      faults = [ degrade 0 2; degrade 1 2 ];
    }
  in
  let r = W.run c in
  let s = r.W.stats in
  Alcotest.(check bool) "faults were injected" true
    (s.F.Stats.faults_injected > 0);
  let v = W.check c in
  Alcotest.(check bool) "durable under transient faults" true
    v.Lincheck.Durable.durable

let test_degraded_fallback () =
  (* weakest-lflush flushes with LFlush; a degraded link toward the home
     makes the transform fall back to RFlush (LFlush would strand the
     dirty line behind a flaky link), recorded in degraded_ops *)
  let c =
    { (base Harness.Objects.Register Flit.Registry.weakest_lflush) with
      W.seed = 3;
      ops_per_thread = 4;
      faults = [ degrade ~nack:0.2 ~delay:0.0 0 2 ];
    }
  in
  let r = W.run c in
  let s = r.W.stats in
  Alcotest.(check bool) "LF->RF fallback happened" true
    (s.F.Stats.degraded_ops > 0);
  Alcotest.(check bool) "fallback flushes are remote" true
    (s.F.Stats.rflushes > 0);
  let v = W.check c in
  Alcotest.(check bool) "still durable" true v.Lincheck.Durable.durable

let test_poison_aborts_are_durable () =
  (* an early poison on the counter's line: RMW/load operations that
     observe it abort with a typed Faulted response, which the checker
     treats as pending — the verdict stays durable *)
  let c =
    { (base Harness.Objects.Counter Flit.Registry.simple) with
      W.seed = 2;
      ops_per_thread = 4;
      faults = [ W.Poison_at { at = 2; loc_seed = 0 } ];
    }
  in
  let r = W.run c in
  let faulted =
    List.exists
      (fun (o : H.op) -> o.H.ret = Some H.Faulted)
      (H.ops r.W.history)
  in
  Alcotest.(check bool) "some op observed the poison" true faulted;
  Alcotest.(check bool) "poison observations counted" true
    (r.W.stats.F.Stats.faults_injected > 0);
  let v = W.check c in
  Alcotest.(check bool) "faulted history durable" true
    v.Lincheck.Durable.durable

let test_faulted_run_deterministic () =
  let c =
    { (base Harness.Objects.Queue Flit.Registry.alg3_rstore) with
      W.seed = 11;
      ops_per_thread = 3;
      crashes =
        [ { W.at = 12; machine = 0; restart_at = 18; recovery_threads = 1;
            recovery_ops = 1 } ];
      faults = [ degrade 0 2; W.Poison_at { at = 20; loc_seed = 3 } ];
    }
  in
  let fingerprint () =
    let h, verdict, _ = Fuzz.Campaign.replay c in
    Fmt.str "%a|%s" H.pp h verdict
  in
  Alcotest.(check string) "same config, same run" (fingerprint ())
    (fingerprint ())

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let c =
    { (base Harness.Objects.Stack Flit.Registry.adaptive) with
      W.faults =
        [
          degrade 0 1;
          W.Down_link { m1 = 1; m2 = 2; from_cycle = 100; until_cycle = 900 };
          W.Poison_at { at = 7; loc_seed = 5 };
        ];
    }
  in
  match Harness.Codec.config_of_string (Harness.Codec.config_to_string c) with
  | Error e -> Alcotest.failf "decode: %s" (Harness.Codec.error_to_string e)
  | Ok c' ->
      Alcotest.(check bool) "round-trips" true (Harness.Codec.config_equal c c')

let test_codec_fault_free_unchanged () =
  (* fault-free configs serialise without a faults field at all, so old
     corpus files (and their content-hashed names) stay valid *)
  let c = base Harness.Objects.Counter Flit.Registry.simple in
  let s = Harness.Codec.config_to_string c in
  Alcotest.(check bool) "no faults field emitted" false (contains s "faults");
  match Harness.Codec.config_of_string s with
  | Ok c' -> Alcotest.(check bool) "parses back" true
               (Harness.Codec.config_equal c c')
  | Error e -> Alcotest.failf "decode: %s" (Harness.Codec.error_to_string e)

let test_describe_suffix () =
  let c = base Harness.Objects.Counter Flit.Registry.simple in
  let has_faults s = contains s "faults=" in
  Alcotest.(check bool) "fault-free provenance unchanged" false
    (has_faults (W.describe c));
  Alcotest.(check bool) "faulted provenance labelled" true
    (has_faults (W.describe { c with W.faults = [ degrade 0 1 ] }))

(* ------------------------------------------------------------------ *)
(* Generator and shrinker                                              *)
(* ------------------------------------------------------------------ *)

let test_gen_fault_free_empty () =
  let p = G.profile_of_transform Flit.Registry.alg3_rstore in
  let rng = Random.State.make [| 9 |] in
  for _ = 1 to 30 do
    let c = G.gen p rng in
    Alcotest.(check int) "no fault specs" 0 (List.length c.W.faults)
  done

let test_gen_envelopes_well_formed () =
  List.iter
    (fun env ->
      let p =
        { (G.profile_of_transform Flit.Registry.alg3_rstore) with
          G.fault_env = env }
      in
      let rng = Random.State.make [| 13 |] in
      for _ = 1 to 30 do
        let c = G.gen p rng in
        Alcotest.(check bool) "non-empty" true (c.W.faults <> []);
        (* every spec must be accepted by the fabric constructor *)
        ignore (W.build_fabric c);
        List.iter
          (function
            | W.Degrade_link { m1; m2; _ } | W.Down_link { m1; m2; _ } ->
                Alcotest.(check bool) "distinct endpoints in range" true
                  (m1 <> m2 && m1 < c.W.n_machines && m2 < c.W.n_machines)
            | W.Poison_at { at; _ } ->
                Alcotest.(check bool) "positive step" true (at >= 1))
          c.W.faults
      done)
    [ G.Transient_only; G.Degraded_env; G.Poison_env ]

let test_shrink_drops_faults () =
  let c =
    { (base Harness.Objects.Counter Flit.Registry.simple) with
      W.faults = [ degrade 0 1; W.Poison_at { at = 5; loc_seed = 1 } ] }
  in
  Alcotest.(check bool) "one-fewer-fault candidates offered" true
    (List.exists
       (fun c' -> List.length c'.W.faults = 1)
       (Fuzz.Shrink.candidates c));
  (* a failure independent of the faults shrinks to a fault-free config *)
  let m = Fuzz.Shrink.minimize ~still_failing:(fun _ -> true) c in
  Alcotest.(check int) "faults shrunk away" 0 (List.length m.W.faults)

let () =
  Alcotest.run "faults"
    [
      ( "harness",
        [
          Alcotest.test_case "transient durable" `Quick test_transient_durable;
          Alcotest.test_case "degraded LF->RF fallback" `Quick
            test_degraded_fallback;
          Alcotest.test_case "poison aborts durable" `Quick
            test_poison_aborts_are_durable;
          Alcotest.test_case "deterministic replay" `Quick
            test_faulted_run_deterministic;
        ] );
      ( "codec",
        [
          Alcotest.test_case "round-trip" `Quick test_codec_roundtrip;
          Alcotest.test_case "fault-free unchanged" `Quick
            test_codec_fault_free_unchanged;
          Alcotest.test_case "describe suffix" `Quick test_describe_suffix;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "fault-free draws nothing" `Quick
            test_gen_fault_free_empty;
          Alcotest.test_case "envelopes well-formed" `Quick
            test_gen_envelopes_well_formed;
          Alcotest.test_case "shrink drops faults" `Quick
            test_shrink_drops_faults;
        ] );
    ]
