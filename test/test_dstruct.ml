(* The transformed data structures: pointer encoding, per-structure
   sequential semantics (checked against the sequential specs), and
   crash-free concurrent linearizability under many seeds. *)

module S = Runtime.Sched
module W = Harness.Workload
module O = Harness.Objects
module FI = Flit.Flit_intf

(* ------------------------------------------------------------------ *)
(* Ptr encoding                                                        *)
(* ------------------------------------------------------------------ *)

let test_ptr_plain () =
  Alcotest.(check bool) "null" true (Dstruct.Ptr.is_null Dstruct.Ptr.null);
  Alcotest.(check int) "roundtrip" 17 Dstruct.Ptr.(to_loc (of_loc 17));
  Alcotest.(check bool) "loc 0 is not null" false
    (Dstruct.Ptr.is_null (Dstruct.Ptr.of_loc 0))

let test_ptr_marked () =
  let open Dstruct.Ptr in
  let p = marked_of_loc 5 in
  Alcotest.(check bool) "unmarked" false (mark_of p);
  Alcotest.(check int) "target" 5 (loc_of_marked p);
  let pm = with_mark p in
  Alcotest.(check bool) "marked" true (mark_of pm);
  Alcotest.(check int) "target preserved" 5 (loc_of_marked pm);
  Alcotest.(check int) "unmark" p (without_mark pm);
  Alcotest.(check bool) "marked null detection" true (is_marked_null marked_null);
  Alcotest.(check bool) "loc 0 pointer not null" false
    (is_marked_null (marked_of_loc 0));
  Alcotest.(check bool) "explicit mark arg" true (mark_of (marked_of_loc ~mark:true 3))

(* ------------------------------------------------------------------ *)
(* Scripted sequential runs                                            *)
(* ------------------------------------------------------------------ *)

(* Run [script] single-threaded against a fresh instance; return results. *)
let run_script kind transform script =
  let fab = Fabric.uniform ~seed:3 ~evict_prob:0.1 ~cache_capacity:4 2 in
  let flit = FI.instantiate transform fab in
  let s = S.create fab in
  let out = ref [] in
  ignore
    (S.spawn s ~machine:0 ~name:"seq" (fun ctx ->
         let inst = O.create kind flit ctx ~home:1 ~pflag:true in
         List.iter
           (fun (op, args) ->
             out := (op, args, inst.O.dispatch ctx op args) :: !out)
           script));
  ignore (S.run s);
  List.rev !out

let check_script kind transform script =
  let trace = run_script kind transform script in
  Alcotest.(check bool)
    (Fmt.str "%s sequential conformance" (O.kind_name kind))
    true
    (Lincheck.Spec.conforms (O.spec kind) trace)

let stack_script =
  [
    ("pop", []); ("push", [ 1 ]); ("push", [ 2 ]); ("push", [ 3 ]);
    ("pop", []); ("pop", []); ("push", [ 4 ]); ("pop", []); ("pop", []);
    ("pop", []);
  ]

let queue_script =
  [
    ("deq", []); ("enq", [ 1 ]); ("enq", [ 2 ]); ("deq", []); ("enq", [ 3 ]);
    ("deq", []); ("deq", []); ("deq", []);
  ]

let set_script =
  [
    ("contains", [ 2 ]); ("add", [ 2 ]); ("add", [ 2 ]); ("add", [ 1 ]);
    ("add", [ 3 ]); ("contains", [ 2 ]); ("remove", [ 2 ]); ("contains", [ 2 ]);
    ("remove", [ 2 ]); ("add", [ 2 ]); ("contains", [ 2 ]); ("remove", [ 1 ]);
    ("remove", [ 3 ]); ("remove", [ 2 ]); ("contains", [ 1 ]);
  ]

let map_script =
  [
    ("get", [ 1 ]); ("put", [ 1; 10 ]); ("get", [ 1 ]); ("put", [ 1; 20 ]);
    ("get", [ 1 ]); ("put", [ 2; 30 ]); ("get", [ 2 ]); ("del", [ 1 ]);
    ("get", [ 1 ]); ("del", [ 1 ]); ("put", [ 9; 40 ]); ("get", [ 9 ]);
    ("del", [ 9 ]); ("get", [ 9 ]);
  ]

let log_script =
  [
    ("size", []); ("read", [ 0 ]); ("append", [ 7 ]); ("size", []);
    ("read", [ 0 ]); ("append", [ 8 ]); ("append", [ 9 ]); ("read", [ 1 ]);
    ("read", [ 2 ]); ("read", [ 3 ]); ("size", []);
  ]

let register_script =
  [ ("read", []); ("write", [ 5 ]); ("read", []); ("write", [ 2 ]); ("read", []) ]

let counter_script =
  [ ("get", []); ("inc", []); ("inc", []); ("get", []); ("inc", []); ("get", []) ]

let script_for = function
  | O.Register -> register_script
  | O.Counter -> counter_script
  | O.Stack -> stack_script
  | O.Queue -> queue_script
  | O.Set -> set_script
  | O.Map -> map_script
  | O.Log -> log_script
  | O.Kv -> map_script (* same op surface and spec as Map, sharded *)

let sequential_cases =
  List.concat_map
    (fun t ->
      List.map
        (fun kind ->
          Alcotest.test_case
            (Fmt.str "%s/%s" (O.kind_name kind) (FI.name t))
            `Quick
            (fun () -> check_script kind t (script_for kind)))
        O.all_kinds)
    [ Flit.Registry.alg2_mstore; Flit.Registry.alg3'_weakest;
      Flit.Registry.noflush ]

(* longer randomized sequential runs, replayed against the spec *)
let random_sequential kind =
  QCheck.Test.make
    ~name:(Fmt.str "%s random sequential ops conform" (O.kind_name kind))
    ~count:30 QCheck.small_nat
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let script = List.init 40 (fun _ -> O.random_op kind rng) in
      let trace = run_script kind Flit.Registry.alg3'_weakest script in
      Lincheck.Spec.conforms (O.spec kind) trace)

(* ------------------------------------------------------------------ *)
(* Structure-specific behaviours                                       *)
(* ------------------------------------------------------------------ *)

let test_stack_interleaved_push_pop () =
  let trace =
    run_script O.Stack Flit.Registry.alg2_mstore
      [ ("push", [ 9 ]); ("pop", []); ("pop", []); ("push", [ 8 ]); ("pop", []) ]
  in
  Alcotest.(check (list int)) "returns"
    [ 0; 9; Lincheck.Spec.absent; 0; 8 ]
    (List.map (fun (_, _, r) -> r) trace)

let test_queue_fifo_order () =
  let trace =
    run_script O.Queue Flit.Registry.alg2_mstore
      [ ("enq", [ 5 ]); ("enq", [ 6 ]); ("enq", [ 7 ]); ("deq", []);
        ("deq", []); ("deq", []) ]
  in
  Alcotest.(check (list int)) "fifo" [ 0; 0; 0; 5; 6; 7 ]
    (List.map (fun (_, _, r) -> r) trace)

let test_set_monotone_keys () =
  (* insertion in descending order still yields correct membership *)
  let trace =
    run_script O.Set Flit.Registry.alg2_mstore
      [ ("add", [ 3 ]); ("add", [ 2 ]); ("add", [ 1 ]); ("contains", [ 1 ]);
        ("contains", [ 2 ]); ("contains", [ 3 ]); ("remove", [ 2 ]);
        ("contains", [ 1 ]); ("contains", [ 2 ]); ("contains", [ 3 ]) ]
  in
  Alcotest.(check (list int)) "membership" [ 1; 1; 1; 1; 1; 1; 1; 1; 0; 1 ]
    (List.map (fun (_, _, r) -> r) trace)

let test_map_bucket_collisions () =
  (* a 1-bucket map forces every key into the same chain *)
  let fab = Fabric.uniform ~seed:3 ~evict_prob:0.0 2 in
  let flit = FI.instantiate Flit.Registry.alg2_mstore fab in
  let s = S.create fab in
  ignore
    (S.spawn s ~machine:0 ~name:"t" (fun ctx ->
         let module M = Dstruct.Hmap in
         let m = M.create ctx ~buckets:1 ~flit ~home:1 () in
         Alcotest.(check int) "put" 0 (M.put m ctx 1 10);
         Alcotest.(check int) "put" 0 (M.put m ctx 2 20);
         Alcotest.(check int) "put" 0 (M.put m ctx 3 30);
         Alcotest.(check int) "get 2" 20 (M.get m ctx 2);
         Alcotest.(check int) "del 2" 1 (M.del m ctx 2);
         Alcotest.(check int) "get 2 gone" Lincheck.Spec.absent (M.get m ctx 2);
         Alcotest.(check int) "get 1" 10 (M.get m ctx 1);
         Alcotest.(check int) "get 3" 30 (M.get m ctx 3)));
  ignore (S.run s)

let test_dispatch_rejects_unknown () =
  let fab = Fabric.uniform ~seed:3 2 in
  let flit = FI.instantiate Flit.Registry.alg2_mstore fab in
  let s = S.create fab in
  ignore
    (S.spawn s ~machine:0 ~name:"t" (fun ctx ->
         let inst = O.create O.Stack flit ctx ~home:1 ~pflag:true in
         Alcotest.check_raises "bad op" (Invalid_argument "Tstack.dispatch")
           (fun () -> ignore (inst.O.dispatch ctx "frobnicate" []))));
  ignore (S.run s)

(* ------------------------------------------------------------------ *)
(* Log-specific behaviour                                              *)
(* ------------------------------------------------------------------ *)

let test_log_helping_orphan_claim () =
  (* Simulate an appender that claimed slot 0 and died before publishing
     (the length CAS never ran): the next append must help the orphan
     forward and land at index 1; readers then see both entries. *)
  let fab = Fabric.uniform ~seed:2 ~evict_prob:0.0 2 in
  let flit = FI.instantiate Flit.Registry.alg2_mstore fab in
  let s = S.create fab in
  ignore
    (S.spawn s ~machine:0 ~name:"t" (fun ctx ->
         let module L = Dstruct.Dlog in
         let l = L.create ctx ~capacity:8 ~flit ~home:1 () in
         (* forge the orphan claim directly on the fabric: slot 0 := 55,
            committed length left at 0 *)
         Fabric.mstore ctx.S.fab 1 (L.root l + 1) 55;
         let idx = L.append l ctx 66 in
         Alcotest.(check int) "landed after the orphan" 1 idx;
         Alcotest.(check int) "size includes the helped claim" 2 (L.size l ctx);
         Alcotest.(check int) "orphan published" 55 (L.read l ctx 0);
         Alcotest.(check int) "own value" 66 (L.read l ctx 1)));
  ignore (S.run s)

let test_log_capacity () =
  let fab = Fabric.uniform ~seed:2 ~evict_prob:0.0 2 in
  let flit = FI.instantiate Flit.Registry.alg2_mstore fab in
  let s = S.create fab in
  ignore
    (S.spawn s ~machine:0 ~name:"t" (fun ctx ->
         let module L = Dstruct.Dlog in
         let l = L.create ctx ~capacity:2 ~flit ~home:1 () in
         Alcotest.(check int) "0" 0 (L.append l ctx 7);
         Alcotest.(check int) "1" 1 (L.append l ctx 8);
         Alcotest.(check int) "full" Lincheck.Spec.absent (L.append l ctx 9);
         Alcotest.(check int) "out of range" Lincheck.Spec.absent
           (L.read l ctx 5);
         Alcotest.(check int) "negative index" Lincheck.Spec.absent
           (L.read l ctx (-1));
         Alcotest.check_raises "non-positive value"
           (Invalid_argument "Dlog.append: values must be positive")
           (fun () -> ignore (L.append l ctx 0))));
  ignore (S.run s)

let test_log_concurrent_appends_distinct_slots () =
  (* many concurrent appenders: all indices distinct, all values
     recoverable, size = number of appends *)
  let fab = Fabric.uniform ~seed:23 ~evict_prob:0.1 3 in
  let flit = FI.instantiate Flit.Registry.alg3'_weakest fab in
  let s = S.create ~seed:23 fab in
  let module L = Dstruct.Dlog in
  let log = ref None in
  let indices = ref [] in
  ignore
    (S.spawn s ~machine:2 ~name:"init" (fun ctx ->
         let l = L.create ctx ~capacity:32 ~flit ~home:2 () in
         log := Some l;
         for m = 0 to 1 do
           ignore
             (S.spawn s ~machine:m ~name:"app" (fun ctx ->
                  for i = 1 to 5 do
                    let idx = L.append l ctx ((10 * (m + 1)) + i) in
                    indices := idx :: !indices
                  done))
         done));
  ignore (S.run s);
  let idxs = List.sort compare !indices in
  Alcotest.(check (list int)) "dense distinct indices"
    (List.init 10 Fun.id) idxs

(* ------------------------------------------------------------------ *)
(* Root/attach recovery                                                *)
(* ------------------------------------------------------------------ *)

(* Populate a structure with the MStore transformation, register its
   root, crash the home machine, then recover a *fresh handle* via the
   root directory and verify the contents — end-to-end recovery with no
   OCaml-side state carried across the crash (only the recorded expected
   contents). *)

let recovery_fixture populate check =
  let fab = Fabric.uniform ~seed:11 ~evict_prob:0.1 2 in
  (* one instance spans the crash: the fabric (and its transformation
     instance) outlives the crashed machine, exactly as in a real run *)
  let flit = FI.instantiate Flit.Registry.alg2_mstore fab in
  let sched = S.create ~seed:11 fab in
  ignore
    (S.spawn sched ~machine:0 ~name:"init" (fun ctx ->
         let dir = Runtime.Rootdir.create ctx ~home:1 () in
         let root = populate flit ctx in
         ignore (Runtime.Rootdir.register dir ctx ~name:"obj" root)));
  ignore (S.run sched);
  Fabric.crash fab 1;
  let sched2 = S.create ~seed:12 fab in
  ignore
    (S.spawn sched2 ~machine:0 ~name:"recover" (fun ctx ->
         let dir = Runtime.Rootdir.attach fab ~home:1 () in
         match Runtime.Rootdir.lookup dir ctx ~name:"obj" with
         | Some root -> check flit ctx root
         | None -> Alcotest.fail "root lost"));
  ignore (S.run sched2)

let test_attach_register () =
  let module D = Dstruct.Dreg in
  recovery_fixture
    (fun flit ctx ->
      let r = D.create ctx ~flit ~home:1 () in
      D.write r ctx 5;
      D.root r)
    (fun flit ctx root ->
      let r = D.attach ctx ~flit root in
      Alcotest.(check int) "value recovered" 5 (D.read r ctx))

let test_attach_counter () =
  let module D = Dstruct.Dcounter in
  recovery_fixture
    (fun flit ctx ->
      let c = D.create ctx ~flit ~home:1 () in
      for _ = 1 to 4 do
        ignore (D.inc c ctx)
      done;
      D.root c)
    (fun flit ctx root ->
      let c = D.attach ctx ~flit root in
      Alcotest.(check int) "count recovered" 4 (D.get c ctx))

let test_attach_stack () =
  let module D = Dstruct.Tstack in
  recovery_fixture
    (fun flit ctx ->
      let s = D.create ctx ~flit ~home:1 () in
      List.iter (fun v -> D.push s ctx v) [ 1; 2; 3 ];
      D.root s)
    (fun flit ctx root ->
      let s = D.attach ctx ~flit root in
      Alcotest.(check (list int)) "LIFO recovered" [ 3; 2; 1 ]
        (List.init 3 (fun _ -> D.pop s ctx));
      Alcotest.(check int) "then empty" Lincheck.Spec.absent (D.pop s ctx))

let test_attach_queue () =
  let module D = Dstruct.Msqueue in
  recovery_fixture
    (fun flit ctx ->
      let q = D.create ctx ~flit ~home:1 () in
      List.iter (fun v -> D.enq q ctx v) [ 4; 5; 6 ];
      ignore (D.deq q ctx);
      D.root q)
    (fun flit ctx root ->
      let q = D.attach ctx ~flit root in
      Alcotest.(check (list int)) "FIFO tail recovered" [ 5; 6 ]
        (List.init 2 (fun _ -> D.deq q ctx)))

let test_attach_set () =
  let module D = Dstruct.Listset in
  recovery_fixture
    (fun flit ctx ->
      let s = D.create ctx ~flit ~home:1 () in
      ignore (D.add s ctx 2);
      ignore (D.add s ctx 7);
      ignore (D.remove s ctx 2);
      D.root s)
    (fun flit ctx root ->
      let s = D.attach ctx ~flit root in
      Alcotest.(check int) "7 present" 1 (D.contains s ctx 7);
      Alcotest.(check int) "2 removed" 0 (D.contains s ctx 2))

let test_attach_map () =
  let module D = Dstruct.Hmap in
  recovery_fixture
    (fun flit ctx ->
      let m = D.create ctx ~buckets:4 ~flit ~home:1 () in
      ignore (D.put m ctx 1 11);
      ignore (D.put m ctx 9 99);
      D.root m)
    (fun flit ctx root ->
      let m = D.attach ctx ~buckets:4 ~flit root in
      Alcotest.(check int) "key 1" 11 (D.get m ctx 1);
      Alcotest.(check int) "key 9" 99 (D.get m ctx 9);
      Alcotest.(check int) "missing" Lincheck.Spec.absent (D.get m ctx 2))

let test_attach_log () =
  let module D = Dstruct.Dlog in
  recovery_fixture
    (fun flit ctx ->
      let l = D.create ctx ~capacity:8 ~flit ~home:1 () in
      ignore (D.append l ctx 10);
      ignore (D.append l ctx 20);
      D.root l)
    (fun flit ctx root ->
      let l = D.attach ctx ~capacity:8 ~flit root in
      Alcotest.(check int) "size" 2 (D.size l ctx);
      Alcotest.(check int) "entry 0" 10 (D.read l ctx 0);
      Alcotest.(check int) "entry 1" 20 (D.read l ctx 1))

(* ------------------------------------------------------------------ *)
(* Crash-free concurrent linearizability                               *)
(* ------------------------------------------------------------------ *)

(* 3 threads x 3 ops, no crashes: every transformed object must produce
   linearizable histories under any seed (checked for many seeds). *)
let concurrent_lin_case kind t =
  Alcotest.test_case
    (Fmt.str "%s/%s" (O.kind_name kind) (FI.name t))
    `Quick
    (fun () ->
      for seed = 1 to 15 do
        let c = W.default_config kind t in
        let c =
          { c with W.seed; worker_machines = [ 0; 1; 2 ]; ops_per_thread = 3 }
        in
        let v = W.check c in
        if not v.Lincheck.Durable.durable then
          Alcotest.failf "seed %d not linearizable:@.%a" seed
            Lincheck.Durable.pp_verdict v
      done)

let concurrent_cases =
  List.concat_map
    (fun t ->
      List.map (fun kind -> concurrent_lin_case kind t) O.all_kinds)
    [ Flit.Registry.alg2_mstore; Flit.Registry.alg3_rstore;
      Flit.Registry.alg3'_weakest; Flit.Registry.noflush ]
(* note: without crashes even the noflush control must be linearizable —
   coherence alone guarantees that *)

let () =
  Alcotest.run "dstruct"
    [
      ( "ptr",
        [
          Alcotest.test_case "plain" `Quick test_ptr_plain;
          Alcotest.test_case "marked" `Quick test_ptr_marked;
        ] );
      ("sequential", sequential_cases);
      ( "sequential-random",
        List.map
          (fun k -> QCheck_alcotest.to_alcotest (random_sequential k))
          O.all_kinds );
      ( "behaviour",
        [
          Alcotest.test_case "stack interleaved" `Quick
            test_stack_interleaved_push_pop;
          Alcotest.test_case "queue fifo" `Quick test_queue_fifo_order;
          Alcotest.test_case "set descending inserts" `Quick
            test_set_monotone_keys;
          Alcotest.test_case "map collisions" `Quick test_map_bucket_collisions;
          Alcotest.test_case "dispatch unknown" `Quick
            test_dispatch_rejects_unknown;
        ] );
      ( "log",
        [
          Alcotest.test_case "helping orphan claims" `Quick
            test_log_helping_orphan_claim;
          Alcotest.test_case "capacity and bounds" `Quick test_log_capacity;
          Alcotest.test_case "concurrent appends" `Quick
            test_log_concurrent_appends_distinct_slots;
        ] );
      ( "root-attach-recovery",
        [
          Alcotest.test_case "register" `Quick test_attach_register;
          Alcotest.test_case "counter" `Quick test_attach_counter;
          Alcotest.test_case "stack" `Quick test_attach_stack;
          Alcotest.test_case "queue" `Quick test_attach_queue;
          Alcotest.test_case "set" `Quick test_attach_set;
          Alcotest.test_case "map" `Quick test_attach_map;
          Alcotest.test_case "log" `Quick test_attach_log;
        ] );
      ("concurrent-linearizable", concurrent_cases);
    ]
