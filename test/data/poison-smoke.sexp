; Hand-crafted CI smoke scenario: a poisoned line mid-run on an
; alg3-rstore counter.  Not a counterexample — the durable oracle is
; expected to hold (poisoned operations abort as typed Faulted
; responses) — but the traced replay must show the Poison_set instant,
; Poison_hit faults, and the retries around them.
(config
 (kind counter)
 (transform alg3-rstore)
 (n-machines 3)
 (home 2)
 (volatile-home false)
 (workers (0 1))
 (ops-per-thread 4)
 (crashes ())
 (seed 11)
 (evict-prob 0.1)
 (cache-capacity 4)
 (value-range 3)
 (pflag true)
 (faults ((poison (at 9) (loc-seed 1)))))
