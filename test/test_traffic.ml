(* The traffic layer: Zipfian generator shape (rank-frequency
   monotonicity, theta-skew ordering), mix parsing, and the schedule
   determinism contract — byte-identical request streams for a fixed
   seed across --jobs values and across reruns. *)

module T = Harness.Traffic

(* ------------------------------------------------------------------ *)
(* Zipfian generator                                                   *)
(* ------------------------------------------------------------------ *)

let draw_counts ~theta ~n ~draws =
  let z = T.Zipf.create ~theta ~n in
  let rng = Random.State.make [| 42 |] in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let r = T.Zipf.draw z rng in
    counts.(r) <- counts.(r) + 1
  done;
  counts

let test_zipf_rank_monotone () =
  (* the head of the distribution must be strictly ordered by rank: with
     200k draws the adjacent-rank frequency ratio (at most (r+1/r+2)^0.9
     ~ 0.9 for r < 8) is far outside sampling noise — and the draw
     stream is seeded, so this is a deterministic check, not a flaky
     statistical one *)
  let counts = draw_counts ~theta:0.9 ~n:64 ~draws:200_000 in
  for r = 0 to 7 do
    Alcotest.(check bool)
      (Fmt.str "count(%d) > count(%d)" r (r + 1))
      true
      (counts.(r) > counts.(r + 1))
  done;
  Alcotest.(check bool) "head dominates tail" true (counts.(0) > 10 * counts.(63))

let test_zipf_theta_skew () =
  (* more theta, more head mass: the top-4 share must be strictly
     increasing in theta, and theta = 0 must be near-uniform *)
  let head_share theta =
    let counts = draw_counts ~theta ~n:64 ~draws:100_000 in
    counts.(0) + counts.(1) + counts.(2) + counts.(3)
  in
  let s0 = head_share 0.0 and s5 = head_share 0.5 and s9 = head_share 0.9 in
  Alcotest.(check bool) "theta 0 < 0.5" true (s0 < s5);
  Alcotest.(check bool) "theta 0.5 < 0.9" true (s5 < s9);
  let uniform = draw_counts ~theta:0.0 ~n:16 ~draws:160_000 in
  Array.iter
    (fun c ->
      Alcotest.(check bool) "theta 0 near-uniform" true
        (c > 8_000 && c < 12_000))
    uniform

let test_zipf_bounds_and_validation () =
  let z = T.Zipf.create ~theta:0.99 ~n:7 in
  let rng = Random.State.make [| 9 |] in
  for _ = 1 to 10_000 do
    let r = T.Zipf.draw z rng in
    Alcotest.(check bool) "rank in range" true (r >= 0 && r < 7)
  done;
  Alcotest.(check int) "n=1 always rank 0" 0
    (T.Zipf.draw (T.Zipf.create ~theta:0.5 ~n:1) rng);
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "n=0 rejected" true
    (raises (fun () -> T.Zipf.create ~theta:0.5 ~n:0));
  Alcotest.(check bool) "theta=1 rejected" true
    (raises (fun () -> T.Zipf.create ~theta:1.0 ~n:8));
  Alcotest.(check bool) "theta<0 rejected" true
    (raises (fun () -> T.Zipf.create ~theta:(-0.1) ~n:8))

(* ------------------------------------------------------------------ *)
(* Mix parsing                                                         *)
(* ------------------------------------------------------------------ *)

let test_mix_parsing () =
  Alcotest.(check string) "ycsb a" "r50u50i0" (T.mix_name (T.mix_of_string "a"));
  Alcotest.(check string) "ycsb b" "r95u5i0" (T.mix_name (T.mix_of_string "b"));
  Alcotest.(check string) "ycsb c" "r100u0i0" (T.mix_name (T.mix_of_string "c"));
  Alcotest.(check string) "ycsb d" "r95u0i5" (T.mix_name (T.mix_of_string "d"));
  Alcotest.(check string) "weights" "r95u4i1"
    (T.mix_name (T.mix_of_string "95:4:1"));
  let rejected s =
    try ignore (T.mix_of_string s); false with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "all-zero rejected" true (rejected "0:0:0");
  Alcotest.(check bool) "negative rejected" true (rejected "5:-1:0");
  Alcotest.(check bool) "garbage rejected" true (rejected "lots");
  Alcotest.(check bool) "two fields rejected" true (rejected "95:5")

(* ------------------------------------------------------------------ *)
(* Schedule generation                                                 *)
(* ------------------------------------------------------------------ *)

let spec =
  { T.default_spec with T.sessions = 13; ops_per_session = 9; keyspace = 32;
    seed = 7 }

let test_jobs_identical_streams () =
  (* the satellite contract: byte-identical key streams for a fixed seed
     across --jobs, and across reruns *)
  let base = T.generate ~jobs:1 spec in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Fmt.str "jobs=%d identical" jobs)
        true
        (T.generate ~jobs spec = base))
    [ 1; 2; 4; 7 ];
  Alcotest.(check bool) "seed matters" true
    (T.generate ~jobs:1 { spec with T.seed = 8 } <> base)

let test_schedule_well_formed () =
  let reqs = T.generate ~jobs:1 { spec with T.mix = T.mix_of_string "90:5:5" } in
  Alcotest.(check int) "all ops scheduled" (T.total_ops spec)
    (Array.length reqs);
  let last_arrival = ref 0 in
  let per_session_seq = Hashtbl.create 16 in
  let insert_keys = ref [] in
  Array.iter
    (fun (r : T.request) ->
      Alcotest.(check bool) "arrivals nondecreasing" true
        (r.T.arrival >= !last_arrival);
      last_arrival := r.T.arrival;
      (* per-session issue order survives the arrival-sorted merge *)
      let prev =
        Option.value ~default:(-1) (Hashtbl.find_opt per_session_seq r.T.session)
      in
      Alcotest.(check bool) "session seq increases" true (r.T.seq > prev);
      Hashtbl.replace per_session_seq r.T.session r.T.seq;
      match r.T.op with
      | T.Read ->
          Alcotest.(check bool) "read key in keyspace" true
            (r.T.key >= 0 && r.T.key < spec.T.keyspace);
          Alcotest.(check int) "read value 0" 0 r.T.value
      | T.Update ->
          Alcotest.(check bool) "update key in keyspace" true
            (r.T.key >= 0 && r.T.key < spec.T.keyspace)
      | T.Insert ->
          Alcotest.(check bool) "insert key fresh" true
            (r.T.key >= spec.T.keyspace);
          insert_keys := r.T.key :: !insert_keys)
    reqs;
  Alcotest.(check int) "insert keys never collide"
    (List.length !insert_keys)
    (List.length (List.sort_uniq compare !insert_keys))

let test_stream_equals_generate () =
  (* the streaming engine's contract: element-for-element equal to the
     materialised schedule, persistent (forcing twice replays the same
     draws), and O(sessions) in state — the big spec here would blow an
     eager engine's memory budget times over if it materialised *)
  let arr = T.generate spec in
  let s = T.stream spec in
  Alcotest.(check bool) "stream = generate" true (Array.of_seq s = arr);
  Alcotest.(check bool) "stream is persistent" true
    (Array.of_seq s = arr);
  let big = { spec with T.sessions = 3; ops_per_session = 100_000 } in
  let n = Seq.fold_left (fun n (_ : T.request) -> n + 1) 0 (T.stream big) in
  Alcotest.(check int) "lazy stream drains fully" (T.total_ops big) n

let test_validate () =
  let ok s = Result.is_ok (T.validate s) in
  let err s msg =
    match T.validate s with
    | Error m -> Alcotest.(check string) "error names the field" msg m
    | Ok () -> Alcotest.failf "expected %S" msg
  in
  Alcotest.(check bool) "default spec valid" true (ok T.default_spec);
  err { spec with T.sessions = 0 } "sessions must be positive";
  err { spec with T.ops_per_session = -1 } "ops per session must be positive";
  err { spec with T.rate = 0.0 } "rate must be positive";
  err { spec with T.rate = Float.nan } "rate must be positive";
  err { spec with T.theta = 1.0 } "theta must be in [0, 1)";
  err { spec with T.theta = -0.1 } "theta must be in [0, 1)";
  err { spec with T.keyspace = 0 } "keyspace must be positive";
  err { spec with T.value_range = 0 } "value range must be positive";
  err
    { spec with T.mix = { T.reads = 0; updates = 0; inserts = 0 } }
    "mix weights must be non-negative and sum to > 0";
  (* generate/stream raise the same message, prefixed by their entry
     point — the CLI shares validate, so cxl0-kv rejects identically *)
  Alcotest.check_raises "generate raises"
    (Invalid_argument "Traffic.generate: rate must be positive") (fun () ->
      ignore (T.generate { spec with T.rate = -1.0 }));
  Alcotest.check_raises "stream raises"
    (Invalid_argument "Traffic.stream: sessions must be positive") (fun () ->
      ignore (T.stream { spec with T.sessions = 0 } : T.request Seq.t))

let test_mix_respected () =
  let all_ops mix =
    Array.to_list (T.generate ~jobs:1 { spec with T.mix })
    |> List.map (fun r -> r.T.op)
  in
  Alcotest.(check bool) "mix c is read-only" true
    (List.for_all (fun o -> o = T.Read) (all_ops (T.mix_of_string "c")));
  Alcotest.(check bool) "mix 0:100:0 is update-only" true
    (List.for_all (fun o -> o = T.Update) (all_ops (T.mix_of_string "0:100:0")));
  let ops_b = all_ops (T.mix_of_string "b") in
  let reads = List.length (List.filter (fun o -> o = T.Read) ops_b) in
  (* 95% of 117 ops: the seeded draw lands near the weight split *)
  Alcotest.(check bool) "mix b mostly reads" true
    (reads * 100 / List.length ops_b >= 85)

let () =
  Alcotest.run "traffic"
    [
      ( "zipf",
        [
          Alcotest.test_case "rank-frequency monotone" `Quick
            test_zipf_rank_monotone;
          Alcotest.test_case "theta skew ordering" `Quick test_zipf_theta_skew;
          Alcotest.test_case "bounds and validation" `Quick
            test_zipf_bounds_and_validation;
        ] );
      ("mix", [ Alcotest.test_case "parsing" `Quick test_mix_parsing ]);
      ( "schedule",
        [
          Alcotest.test_case "jobs-identical streams" `Quick
            test_jobs_identical_streams;
          Alcotest.test_case "well-formed" `Quick test_schedule_well_formed;
          Alcotest.test_case "stream equals generate" `Quick
            test_stream_equals_generate;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "mix respected" `Quick test_mix_respected;
        ] );
    ]
