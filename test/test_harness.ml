(* The harness itself: object dispatch plumbing, the random-operation
   generators, workload determinism and history well-formedness, and the
   simulated-cycle measurement layer. *)

module O = Harness.Objects
module W = Harness.Workload
module M = Harness.Measure

(* ------------------------------------------------------------------ *)
(* Objects                                                             *)
(* ------------------------------------------------------------------ *)

let test_kind_names_unique () =
  let names = List.map O.kind_name O.all_kinds in
  Alcotest.(check int) "eight kinds" 8 (List.length O.all_kinds);
  Alcotest.(check int) "names unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_specs_match_kinds () =
  (* every kind's generator only emits ops its spec accepts from any
     reachable state — checked by replaying random sequential runs in
     test_dstruct; here, cheaply: the op is at least legal from init *)
  List.iter
    (fun kind ->
      let module S = (val O.spec kind : Lincheck.Spec.S) in
      let rng = Random.State.make [| 7 |] in
      for _ = 1 to 50 do
        let op, args = O.random_op kind rng in
        (* queue/stack/map reads from empty are legal; every generated op
           must have at least one legal outcome from the initial state *)
        Alcotest.(check bool)
          (Fmt.str "%s: %s legal from init" (O.kind_name kind) op)
          true
          (S.step S.init op args <> [])
      done)
    O.all_kinds

let prop_ratio_op_extremes =
  QCheck.Test.make ~name:"ratio_op respects 0.0 and 1.0" ~count:100
    QCheck.small_nat
    (fun seed ->
      let writes_of kind ratio =
        let rng = Random.State.make [| seed |] in
        let ops = List.init 30 (fun _ -> O.ratio_op kind rng ~read_ratio:ratio) in
        List.map fst ops
      in
      List.for_all
        (fun kind ->
          let reads k = writes_of k 1.0 in
          let writes k = writes_of k 0.0 in
          let is_write op =
            List.mem op [ "write"; "inc"; "push"; "enq"; "add"; "remove";
                          "put"; "del"; "append" ]
          in
          List.for_all (fun op -> not (is_write op)) (reads kind)
          && List.for_all is_write (writes kind))
        O.all_kinds)

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let test_workload_deterministic () =
  let run () =
    let c = W.default_config O.Stack Flit.Registry.alg3_rstore in
    let c =
      {
        c with
        W.seed = 9;
        crashes =
          [ { W.at = 18; machine = 2; restart_at = 25; recovery_threads = 1;
              recovery_ops = 2 } ];
      }
    in
    (W.run c).W.history
  in
  Alcotest.(check bool) "same seed, same history" true (run () = run ())

let test_workload_seed_matters () =
  let hist seed =
    let c = W.default_config O.Stack Flit.Registry.alg3_rstore in
    (W.run { c with W.seed }).W.history
  in
  Alcotest.(check bool) "different seeds diverge somewhere" true
    (List.exists (fun s -> hist s <> hist 1) [ 2; 3; 4 ])

let test_workload_history_well_formed () =
  for seed = 1 to 10 do
    let c = W.default_config O.Map Flit.Registry.alg3'_weakest in
    let c =
      {
        c with
        W.seed;
        crashes =
          [ { W.at = 10 + seed; machine = 0; restart_at = 16 + seed;
              recovery_threads = 2; recovery_ops = 1 } ];
      }
    in
    let r = W.run c in
    Alcotest.(check bool)
      (Fmt.str "seed %d well-formed" seed)
      true
      (Lincheck.History.well_formed r.W.history)
  done

let test_workload_op_counts () =
  (* without crashes, every worker completes exactly ops_per_thread ops *)
  let c = W.default_config O.Counter Flit.Registry.alg2_mstore in
  let c = { c with W.worker_machines = [ 0; 1 ]; ops_per_thread = 4 } in
  let r = W.run c in
  let ops = Lincheck.History.ops r.W.history in
  Alcotest.(check int) "8 ops" 8 (List.length ops);
  Alcotest.(check bool) "all completed" true
    (List.for_all (fun o -> o.Lincheck.History.ret <> None) ops)

let test_workload_crash_recorded () =
  let c = W.default_config O.Register Flit.Registry.alg2_mstore in
  let c =
    {
      c with
      W.crashes =
        [ { W.at = 10; machine = 2; restart_at = 14; recovery_threads = 0;
            recovery_ops = 0 } ];
    }
  in
  let r = W.run c in
  Alcotest.(check int) "one crash event" 1
    (Lincheck.History.crash_count r.W.history)

(* ------------------------------------------------------------------ *)
(* Measure                                                             *)
(* ------------------------------------------------------------------ *)

let test_measure_basic () =
  let c = M.default_config O.Register Flit.Registry.alg2_mstore in
  let c = { c with M.ops_per_thread = 50 } in
  let p = M.run c in
  Alcotest.(check int) "total ops" 100 p.M.total_ops;
  Alcotest.(check bool) "cycles positive" true (p.M.cycles > 0);
  Alcotest.(check bool) "cycles/op consistent" true
    (abs_float
       (p.M.cycles_per_op -. (float_of_int p.M.cycles /. 100.))
    < 1e-9)

let test_measure_deterministic () =
  let c = M.default_config O.Queue Flit.Registry.alg3_rstore in
  let c = { c with M.ops_per_thread = 40 } in
  Alcotest.(check int) "same cycles" (M.run c).M.cycles (M.run c).M.cycles

let test_measure_durability_ordering () =
  (* durable transformations must cost more than no protection *)
  let cost t =
    (M.run { (M.default_config O.Register t) with M.ops_per_thread = 100 })
      .M.cycles_per_op
  in
  Alcotest.(check bool) "noflush cheapest" true
    (cost Flit.Registry.noflush < cost Flit.Registry.weakest_lflush);
  Alcotest.(check bool) "lflush < rflush path" true
    (cost Flit.Registry.weakest_lflush < cost Flit.Registry.alg3'_weakest)

let test_measure_flat_model () =
  (* under the flat latency model primitives all cost ~1: cycles/op
     collapses and transformation differences shrink to op counts *)
  let c =
    {
      (M.default_config O.Register Flit.Registry.alg3_rstore) with
      M.model = Fabric.Latency.flat;
      ops_per_thread = 50;
    }
  in
  let p = M.run c in
  Alcotest.(check bool) "order of magnitude smaller" true
    (p.M.cycles_per_op < 20.)

let test_measure_sync_every () =
  (* syncing less often must not cost more *)
  let cost sync_every =
    (M.run
       {
         (M.default_config O.Register Flit.Registry.buffered) with
         M.sync_every;
         ops_per_thread = 100;
       })
      .M.cycles_per_op
  in
  Alcotest.(check bool) "amortisation monotone-ish" true
    (cost 64 <= cost 1)

let test_measure_topology () =
  let cost topology =
    (M.run
       {
         (M.default_config O.Register Flit.Registry.alg2_mstore) with
         M.n_machines = 4;
         topology;
         ops_per_thread = 60;
       })
      .M.cycles_per_op
  in
  Alcotest.(check bool) "spine crossing costs more" true
    (cost (Some (Fabric.Topology.two_level [ 3; 1 ])) > cost None)

let () =
  Alcotest.run "harness"
    [
      ( "objects",
        [
          Alcotest.test_case "kind names" `Quick test_kind_names_unique;
          Alcotest.test_case "generated ops legal" `Quick
            test_specs_match_kinds;
          QCheck_alcotest.to_alcotest prop_ratio_op_extremes;
        ] );
      ( "workload",
        [
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "seed matters" `Quick test_workload_seed_matters;
          Alcotest.test_case "well-formed histories" `Quick
            test_workload_history_well_formed;
          Alcotest.test_case "op counts" `Quick test_workload_op_counts;
          Alcotest.test_case "crash recorded" `Quick test_workload_crash_recorded;
        ] );
      ( "measure",
        [
          Alcotest.test_case "basic" `Quick test_measure_basic;
          Alcotest.test_case "deterministic" `Quick test_measure_deterministic;
          Alcotest.test_case "durability ordering" `Quick
            test_measure_durability_ordering;
          Alcotest.test_case "flat model" `Quick test_measure_flat_model;
          Alcotest.test_case "sync amortisation" `Quick test_measure_sync_every;
          Alcotest.test_case "topology" `Quick test_measure_topology;
        ] );
    ]
