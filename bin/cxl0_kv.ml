(* cxl0-kv: the sharded durable KV service under open-loop Zipfian
   traffic (ROADMAP item 1, EXPERIMENTS E17/E18).

     dune exec bin/cxl0_kv.exe -- --sessions 64 --rate 200 --theta 0.9
     dune exec bin/cxl0_kv.exe -- --transform alg2-mstore,adaptive --mix a,b
     dune exec bin/cxl0_kv.exe -- --crash home --faults degraded --check
     dune exec bin/cxl0_kv.exe -- --replicas 2 --storm 5 --check   # failover
     dune exec bin/cxl0_kv.exe -- --sig          # determinism signatures

   Sweeps transform x mix combos; each combo is one serving run
   (Harness.Kv.serve) reporting throughput in ops per 1000 simulated
   cycles and per-op-type p50/p99 latency (completion minus *arrival*,
   so queueing under overload is visible).  Everything is deterministic
   in --seed: --sig prints one signature line per combo and CI diffs two
   runs byte-for-byte. *)

open Cmdliner
module K = Harness.Kv
module T = Harness.Traffic
module R = Harness.Runcore

(* Deterministic crash schedule: scheduler steps, early enough that a
   default-size run has plenty of serving on both sides of the crash. *)
let crash_schedule ~crash ~home seed : R.crash_spec list =
  match crash with
  | "none" -> []
  | "home" ->
      [
        { R.at = 400 + (seed mod 29); machine = home;
          restart_at = 900 + (seed mod 29); recovery_threads = 1;
          recovery_ops = 0 };
      ]
  | _ ->
      (* worker: a serving machine that is not the shard-0 home *)
      [
        { R.at = 400 + (seed mod 29); machine = 0;
          restart_at = 900 + (seed mod 29); recovery_threads = 1;
          recovery_ops = 0 };
      ]

(* Deterministic RAS schedules per envelope, shaped like flit_run's but
   with cycle windows sized for serving runs (arrivals stretch over
   ~total_ops/rate kilocycles, not a few hundred cycles). *)
let fault_schedule ~faults ~home seed : R.fault_spec list =
  match faults with
  | "none" -> []
  | "transient" ->
      [
        R.Degrade_link
          { m1 = seed mod 2; m2 = home; nack_prob = 0.1; delay_prob = 0.1;
            delay_cycles = 40 };
      ]
  | "degraded" ->
      [
        R.Degrade_link
          { m1 = seed mod 2; m2 = home; nack_prob = 0.4; delay_prob = 0.3;
            delay_cycles = 80 };
        R.Down_link
          { m1 = (seed + 1) mod 2; m2 = home;
            from_cycle = 2000 + (seed mod 7 * 200);
            until_cycle = 6000 + (seed mod 7 * 200) };
      ]
  | _ -> [ R.Poison_at { at = 150 + (seed mod 23); loc_seed = seed } ]

(* Chaos storm: [storm] sequential crash/restart cycles rotating over
   the machines — with replication on, every one is a shard-home crash
   and the service is expected to fail over, heal the restarted
   replicas, and stay strictly durable.  Steps are spaced so each cycle
   sees serving traffic on both sides of the outage. *)
let storm_schedule ~storm ~machines seed : R.crash_spec list =
  List.init storm (fun i ->
      let at = 150 + (i * 450) + (seed mod 13) in
      {
        R.at;
        machine = i mod machines;
        restart_at = at + 200;
        recovery_threads = 0;
        recovery_ops = 0;
      })

let op_names = [| "read"; "update"; "insert" |]

(* One combo's deterministic signature: counters, clock, per-op
   histogram shapes, and the full fabric stats JSON.  CI diffs two runs
   of these lines; any nondeterminism anywhere in the serving stack
   (schedule generation, shard mapping, scheduler, fault plan) shows.
   With a tracer attached the span digest folds in, so span assembly is
   covered by the same run-twice and cross-jobs diffs; untraced
   signature lines are byte-identical to previous releases. *)
let signature transform mix ?spans (r : K.serve_result) =
  Printf.sprintf
    "kv %s mix=%s served=%d/%d/%d faulted=%d timed_out=%d dropped=%d \
     failovers=%d rejoins=%d avail=%.4f cycles=%d read:[%s] update:[%s] \
     insert:[%s] stats=%s%s"
    (Flit.Flit_intf.name transform)
    (T.mix_name mix) r.K.served.(0) r.K.served.(1) r.K.served.(2) r.K.faulted
    r.K.timed_out r.K.dropped r.K.failovers r.K.rejoins r.K.availability
    r.K.cycles
    (Bench_util.hist_sig r.K.latencies.(0))
    (Bench_util.hist_sig r.K.latencies.(1))
    (Bench_util.hist_sig r.K.latencies.(2))
    (Fabric.Stats.to_json r.K.stats)
    (match spans with
    | None -> ""
    | Some sp -> " spans=" ^ Obs.Span.digest sp)

let total_served (r : K.serve_result) =
  r.K.served.(0) + r.K.served.(1) + r.K.served.(2)

let throughput (r : K.serve_result) =
  if r.K.cycles = 0 then 0.0
  else float_of_int (total_served r) *. 1000.0 /. float_of_int r.K.cycles

let combo_json transform mix (r : K.serve_result) ~seconds =
  let hist_json h =
    Printf.sprintf
      "{ \"n\": %d, \"mean\": %.1f, \"p50\": %d, \"p90\": %d, \"p99\": %d, \
       \"max\": %d }"
      (Obs.Hist.count h) (Obs.Hist.mean h) (Obs.Hist.p50 h) (Obs.Hist.p90 h)
      (Obs.Hist.p99 h) (Obs.Hist.max_value h)
  in
  Printf.sprintf
    "    { \"transform\": %S, \"mix\": %S, \"throughput_ops_per_kcycle\": \
     %.2f, \"served\": %d, \"faulted\": %d, \"timed_out\": %d, \"dropped\": \
     %d, \"failovers\": %d, \"rejoins\": %d, \"availability\": %.4f, \
     \"cycles\": %d, \"seconds\": %.3f,\n\
     \      \"read\": %s,\n\
     \      \"update\": %s,\n\
     \      \"insert\": %s }"
    (Flit.Flit_intf.name transform)
    (T.mix_name mix) (throughput r) (total_served r) r.K.faulted r.K.timed_out
    r.K.dropped r.K.failovers r.K.rejoins r.K.availability r.K.cycles seconds
    (hist_json r.K.latencies.(0))
    (hist_json r.K.latencies.(1))
    (hist_json r.K.latencies.(2))

let print_combo transform mix (r : K.serve_result) =
  Fmt.pr "%-16s mix=%-9s  %6d served  %5.1f ops/kcycle  cycles=%d%s%s@."
    (Flit.Flit_intf.name transform)
    (T.mix_name mix) (total_served r) (throughput r) r.K.cycles
    (if r.K.faulted > 0 then Fmt.str "  faulted=%d" r.K.faulted else "")
    ((if r.K.timed_out > 0 then Fmt.str "  timed_out=%d" r.K.timed_out else "")
    ^ (if r.K.dropped > 0 then Fmt.str "  dropped=%d" r.K.dropped else "")
    ^ (if r.K.failovers > 0 || r.K.rejoins > 0 then
         Fmt.str "  failovers=%d rejoins=%d" r.K.failovers r.K.rejoins
       else "")
    ^
    if r.K.availability < 1.0 then Fmt.str "  avail=%.3f" r.K.availability
    else "");
  Array.iteri
    (fun i h ->
      if Obs.Hist.count h > 0 then
        Fmt.pr
          "    %-7s n=%-6d mean=%-8.1f p50=%-6d p90=%-6d p99=%-6d max=%d@."
          op_names.(i) (Obs.Hist.count h) (Obs.Hist.mean h) (Obs.Hist.p50 h)
          (Obs.Hist.p90 h) (Obs.Hist.p99 h) (Obs.Hist.max_value h))
    r.K.latencies

let run sessions ops rate theta keys mixes transforms shards servers machines
    replicas deadline storm jobs seed crash faults check sig_only trace json
    append label explain_tail timeline window trace_out =
  (* typed argument validation, exit 2 with the offending field named;
     the traffic fields share Traffic.validate with the library so the
     CLI and Kv.serve reject with the same message *)
  let reject msg =
    Fmt.epr "cxl0-kv: %s@." msg;
    exit 2
  in
  (match
     T.validate
       { T.default_spec with T.sessions; ops_per_session = ops; rate; theta;
         keyspace = keys; seed }
   with
  | Error m -> reject m
  | Ok () -> ());
  if machines <= 0 then reject "machines must be positive";
  if shards <= 0 then reject "shards must be positive";
  if servers <= 0 then reject "servers must be positive";
  if replicas <= 0 then reject "replicas must be positive";
  if replicas > machines then
    reject
      (Printf.sprintf "replicas (%d) must not exceed the machine count (%d)"
         replicas machines);
  if storm < 0 then reject "storm must be non-negative";
  if deadline <= 0 then reject "deadline must be positive";
  if explain_tail < 0 then reject "explain-tail must be non-negative";
  if window <= 0 then reject "window must be positive";
  let transforms =
    List.map
      (fun n ->
        match Flit.Registry.find n with
        | Some t -> t
        | None ->
            Fmt.epr "unknown transformation %S; available: %a@." n
              Fmt.(list ~sep:comma string)
              Flit.Registry.names;
            exit 2)
      (String.split_on_char ',' transforms)
  in
  let mixes =
    List.map
      (fun s ->
        try T.mix_of_string s
        with Invalid_argument m ->
          Fmt.epr "%s@." m;
          exit 2)
      (String.split_on_char ',' mixes)
  in
  if not (List.mem faults [ "none"; "transient"; "degraded"; "poison" ])
  then begin
    Fmt.epr "unknown fault envelope %S (none/transient/degraded/poison)@."
      faults;
    exit 2
  end;
  if not (List.mem crash [ "none"; "worker"; "home" ]) then begin
    Fmt.epr "unknown crash regime %S (none/worker/home)@." crash;
    exit 2
  end;
  let home = machines - 1 in
  let config transform mix =
    let traffic =
      { T.default_spec with T.sessions; ops_per_session = ops; rate; theta;
        keyspace = keys; mix; seed }
    in
    let base = K.default_serve_config ~transform ~traffic in
    { base with
      K.env =
        { base.K.env with
          R.n_machines = machines;
          home;
          crashes =
            crash_schedule ~crash ~home seed
            @ storm_schedule ~storm ~machines seed;
          faults = fault_schedule ~faults ~home seed };
      shards;
      servers_per_machine = servers;
      replicas;
      deadline }
  in
  if trace_out <> None && List.length transforms * List.length mixes > 1 then
    reject "--trace-out needs exactly one transform x mix combo";
  let merged_report = Obs.Report.create () in
  let failures = ref 0 in
  (* span/timeline features imply tracing for that combo; the trace ring
     is enlarged so early spans of a long run survive for attribution
     (span stats and the timeline are online and never lossy; only the
     raw marks for --explain-tail / --trace-out live in the ring) *)
  let want_spans =
    explain_tail > 0 || timeline <> None || trace_out <> None
  in
  let series_acc = ref [] in
  let results =
    List.concat_map
      (fun transform ->
        List.map
          (fun mix ->
            let c = config transform mix in
            let tracer =
              if trace || want_spans then
                let series =
                  if timeline <> None then Some (Obs.Series.create ~window)
                  else None
                in
                Some
                  (Obs.Tracer.create
                     ~capacity:
                       (if want_spans then 1 lsl 20
                        else Obs.Tracer.default_capacity)
                     ?series ())
              else None
            in
            let t0 = Unix.gettimeofday () in
            let r = K.serve ?tracer ~jobs c in
            let seconds = Unix.gettimeofday () -. t0 in
            Option.iter
              (fun t ->
                Obs.Report.merge ~into:merged_report (Obs.Tracer.report t);
                Option.iter
                  (fun s -> series_acc := (transform, mix, s) :: !series_acc)
                  (Obs.Tracer.series t))
              tracer;
            let spans =
              match tracer with
              | Some tr when want_spans || sig_only ->
                  Some (Obs.Span.assemble tr)
              | _ -> None
            in
            if sig_only then print_endline (signature transform mix ?spans r)
            else begin
              print_combo transform mix r;
              match spans with
              | Some sp when explain_tail > 0 ->
                  let attrib = Obs.Attrib.of_spans sp in
                  Fmt.pr "  tail attribution (exact per-phase cycle totals; \
                          dominant = heaviest phase over the p99 tail):@.";
                  Fmt.pr "  @[<v>%a@]@." Obs.Attrib.pp attrib;
                  List.iteri
                    (fun i s ->
                      Fmt.pr "  #%d %a@." (i + 1) Obs.Span.pp s)
                    (Obs.Attrib.slowest attrib explain_tail)
              | _ -> ()
            end;
            (match trace_out with
            | Some file ->
                Option.iter
                  (fun tr ->
                    Obs.Export.write tr file;
                    Fmt.epr "wrote %s@." file)
                  tracer
            | None -> ());
            if check then begin
              let v = K.check ~jobs c in
              match v.Lincheck.Durable.skipped with
              | Some _ ->
                  (* undecided, not refuted: the bitmask search tops out
                     at 62 ops — shrink the domain to get a verdict *)
                  Fmt.pr "  durability: undecided@.%a@."
                    Lincheck.Durable.pp_verdict v
              | None ->
                  if not v.Lincheck.Durable.durable then begin
                    incr failures;
                    Fmt.pr "  durability VIOLATION:@.%a@."
                      Lincheck.Durable.pp_verdict v
                  end
                  else Fmt.pr "  durability: ok@."
            end;
            (transform, mix, r, seconds))
          mixes)
      transforms
  in
  if trace && not sig_only then
    Fmt.pr "@.merged fabric-wide report (all combos):@.%a@." Obs.Report.pp
      merged_report;
  let total_seconds =
    List.fold_left (fun a (_, _, _, s) -> a +. s) 0.0 results
  in
  (match json with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      Printf.fprintf oc
        "{ \"label\": %S, \"seed\": %d, \"sessions\": %d, \
         \"ops_per_session\": %d, \"rate\": %.1f, \"theta\": %.2f, \
         \"keys\": %d, \"shards\": %d, \"machines\": %d, \"replicas\": %d, \
         \"deadline\": %d, \"storm\": %d, \"crash\": %S, \"faults\": %S,\n\
         \  \"combos\": [\n\
         %s\n\
         \  ] }\n"
        label seed sessions ops rate theta keys shards machines replicas
        deadline storm crash faults
        (String.concat ",\n"
           (List.map
              (fun (t, m, r, s) -> combo_json t m r ~seconds:s)
              results));
      close_out oc;
      Fmt.epr "wrote %s@." file);
  (match timeline with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      Printf.fprintf oc
        "{ \"label\": %S, \"seed\": %d, \"window\": %d, \"combos\": [\n%s\n] }\n"
        label seed window
        (String.concat ",\n"
           (List.rev_map
              (fun (t, m, s) ->
                Printf.sprintf
                  "  { \"transform\": %S, \"mix\": %S, \"series\": %s }"
                  (Flit.Flit_intf.name t) (T.mix_name m)
                  (Obs.Series.to_json s))
              !series_acc));
      close_out oc;
      Fmt.epr "wrote %s@." file);
  (match append with
  | None -> ()
  | Some file ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 file in
      let offered = List.length results * sessions * ops in
      let served_all =
        List.fold_left (fun a (_, _, r, _) -> a + total_served r) 0 results
      in
      (* aggregate latency shape over every op type and combo;
         schema-additive fields so older history lines parse unchanged *)
      let lat_all = Obs.Hist.create () in
      List.iter
        (fun (_, _, r, _) ->
          Array.iter (fun h -> Obs.Hist.merge ~into:lat_all h) r.K.latencies)
        results;
      Printf.fprintf oc
        "{ \"label\": %S, \"seed\": %d, \"combos\": %d, \"replicas\": %d, \
         \"storm\": %d, \"ops\": %d, \"availability\": %.4f, \"lat_n\": %d, \
         \"lat_mean\": %.1f, \"lat_p50\": %d, \"lat_p99\": %d, \"seconds\": \
         %.3f }\n"
        label seed (List.length results) replicas storm served_all
        (if offered = 0 then 0.0
         else float_of_int served_all /. float_of_int offered)
        (Obs.Hist.count lat_all) (Obs.Hist.mean lat_all)
        (Obs.Hist.p50 lat_all) (Obs.Hist.p99 lat_all) total_seconds;
      close_out oc);
  if !failures > 0 then 1 else 0

let sessions =
  Arg.(
    value & opt int 64
    & info [ "sessions" ] ~docv:"N" ~doc:"Simulated client sessions.")

let ops =
  Arg.(
    value & opt int 32
    & info [ "ops" ] ~docv:"N" ~doc:"Operations per session.")

let rate =
  Arg.(
    value & opt float 2.0
    & info [ "rate" ] ~docv:"R"
        ~doc:"Aggregate offered load, ops per 1000 simulated cycles.")

let theta =
  Arg.(
    value & opt float 0.9
    & info [ "theta" ] ~docv:"F"
        ~doc:"Zipfian skew in [0, 1): 0 uniform, 0.99 YCSB-hot.")

let keys =
  Arg.(
    value & opt int 256
    & info [ "keys" ] ~docv:"N" ~doc:"Preloaded keyspace size.")

let mix =
  Arg.(
    value & opt string "b"
    & info [ "mix" ] ~docv:"MIXES"
        ~doc:
          "Comma-separated op mixes: R:U:I weights (95:4:1) or YCSB \
           letters a (50/50), b (95/5), c (read-only), d (95r/5i).")

let transform =
  Arg.(
    value
    & opt string "alg2-mstore,alg3'-weakest,adaptive"
    & info [ "transform" ] ~docv:"TS"
        ~doc:"Comma-separated transformations to sweep.")

let shards =
  Arg.(
    value & opt int 4
    & info [ "shards" ] ~docv:"N"
        ~doc:"Hash-map shards, homed round-robin across machines.")

let servers =
  Arg.(
    value & opt int 2
    & info [ "servers" ] ~docv:"N" ~doc:"Serving threads per machine.")

let machines =
  Arg.(value & opt int 3 & info [ "machines" ] ~docv:"N" ~doc:"Fabric size.")

let replicas =
  Arg.(
    value & opt int 1
    & info [ "replicas" ] ~docv:"N"
        ~doc:
          "Replicas per shard on distinct machines (1 = unreplicated).  \
           Writes acknowledge on every replica; after a shard-home \
           crash a backup is promoted and the restarted replica is \
           re-synced, so acknowledged updates survive.")

let deadline =
  Arg.(
    value & opt int 4_000
    & info [ "deadline" ] ~docv:"CYCLES"
        ~doc:
          "Per-request budget before a replicated op gives up and \
           counts as timed out (accounted in waiting heartbeats, so \
           requests that never wait never expire).")

let storm =
  Arg.(
    value & opt int 0
    & info [ "storm" ] ~docv:"N"
        ~doc:
          "Chaos storm: $(docv) sequential crash/restart cycles \
           rotating over the machines, layered onto --crash.  With \
           --replicas 2 every cycle is a survivable shard-home crash; \
           --check proves acknowledged writes outlived it.")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"J"
        ~doc:
          "Domains for schedule pregeneration; never changes the \
           schedule (byte-identical for every value).")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Run seed.")

let crash =
  Arg.(
    value & opt string "none"
    & info [ "crash" ] ~docv:"WHO"
        ~doc:
          "Crash regime: none, worker (serving machine), home (shard-0 \
           owner); deterministic schedule per seed, restarted machines \
           rejoin serving.")

let faults =
  Arg.(
    value & opt string "none"
    & info [ "faults" ] ~docv:"ENV"
        ~doc:
          "RAS fault envelope layered onto the crash regime: none, \
           transient, degraded, poison — deterministic per seed.")

let check =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Re-run each combo with history recording and run the \
           durability checker against the map spec (keep the domain \
           small: the checker is exponential).  Exit 1 on violation.")

let sig_only =
  Arg.(
    value & flag
    & info [ "sig" ]
        ~doc:
          "Print one deterministic signature line per combo instead of \
           the human tables (for run-twice determinism diffs in CI).")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Attach an event tracer to every combo and print the merged \
           fabric-wide per-primitive latency report after the sweep.")

let json =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the full sweep results as a JSON document to $(docv).")

let append =
  Arg.(
    value
    & opt (some string) None
    & info [ "append" ] ~docv:"FILE"
        ~doc:"Append a one-line timing record to $(docv) (JSONL).")

let label =
  Arg.(
    value & opt string "run"
    & info [ "label" ] ~docv:"S" ~doc:"Label echoed into JSON output.")

let explain_tail =
  Arg.(
    value & opt int 0
    & info [ "explain-tail" ] ~docv:"N"
        ~doc:
          "Trace every request as a span and print the tail-latency \
           attribution per op type (queue / service / replication / \
           retry / failover-wait, exact cycle totals plus the dominant \
           p99 phase), then the $(docv) slowest requests as annotated \
           span trees.")

let timeline =
  Arg.(
    value
    & opt (some string) None
    & info [ "timeline" ] ~docv:"FILE"
        ~doc:
          "Write a windowed time-series JSON (per --window bucket: \
           dispatches, completions by outcome, failovers, crashes, \
           trusted-replica and in-flight gauges) per combo to $(docv).")

let window =
  Arg.(
    value & opt int 2_000
    & info [ "window" ] ~docv:"CYCLES"
        ~doc:"Timeline bucket width in simulated cycles.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the combo's Chrome/Perfetto trace JSON to $(docv), \
           request spans nested as a synthetic \"requests\" process \
           (sexp dump when $(docv) ends in .sexp).  Needs exactly one \
           transform x mix combo.")

let cmd =
  Cmd.v
    (Cmd.info "cxl0-kv"
       ~doc:
         "Sharded durable KV serving under open-loop Zipfian traffic")
    Term.(
      const run $ sessions $ ops $ rate $ theta $ keys $ mix $ transform
      $ shards $ servers $ machines $ replicas $ deadline $ storm $ jobs
      $ seed $ crash $ faults $ check $ sig_only $ trace $ json $ append
      $ label $ explain_tail $ timeline $ window $ trace_out)

let () = exit (Cmd.eval' cmd)
