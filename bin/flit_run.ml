(* flit-run: execute a crash-injected concurrent workload on a
   transformed object and check the recorded history for durable
   linearizability.

     dune exec bin/flit_run.exe -- --object queue --transform alg3-rstore
     dune exec bin/flit_run.exe -- --object stack --crash home --seeds 50
     dune exec bin/flit_run.exe -- --matrix            # the whole E7 matrix *)

open Cmdliner

let crash_spec ~machine seed : Harness.Workload.crash_spec =
  {
    Harness.Workload.at = 15 + (seed mod 17);
    machine;
    restart_at = 22 + (seed mod 17);
    recovery_threads = 1;
    recovery_ops = 2;
  }

(* Per-seed deterministic fault schedules for each envelope: the default
   config runs 3 machines with the object on machine 2, so the faulted
   link is worker<->home and poison lands on an allocated location.
   Everything varies only with [seed] — reruns are bit-identical. *)
let fault_specs ~faults seed : Harness.Workload.fault_spec list =
  match faults with
  | "none" -> []
  | "transient" ->
      [
        Harness.Workload.Degrade_link
          {
            m1 = seed mod 2;
            m2 = 2;
            nack_prob = 0.1;
            delay_prob = 0.1;
            delay_cycles = 40;
          };
      ]
  | "degraded" ->
      [
        Harness.Workload.Degrade_link
          {
            m1 = seed mod 2;
            m2 = 2;
            nack_prob = 0.4;
            delay_prob = 0.3;
            delay_cycles = 80;
          };
        Harness.Workload.Down_link
          {
            m1 = (seed + 1) mod 2;
            m2 = 2;
            from_cycle = 500 + (seed mod 7 * 100);
            until_cycle = 2500 + (seed mod 7 * 100);
          };
      ]
  | _ ->
      (* poison *)
      [
        Harness.Workload.Poison_at
          { at = 5 + (seed mod 23); loc_seed = seed };
      ]

let config_for kind transform ~crash ~faults seed =
  let c = Harness.Workload.default_config kind transform in
  let crashes =
    match crash with
    | "none" -> []
    | "home" -> [ crash_spec ~machine:2 seed ]
    | _ -> [ crash_spec ~machine:0 seed ]
  in
  { c with
    Harness.Workload.seed;
    crashes;
    faults = fault_specs ~faults seed }

(* One phase row of --stats: the Stats.diff of a workload phase as the
   canonical counter JSON, keyed so phases line up across seeds. *)
let print_phase name (s : Fabric.Stats.t) =
  Fmt.pr "  %-9s %s@." name (Fabric.Stats.to_json s)

let run_one kind transform ~crash ~faults ~seeds ~verbose ~stats ~trace =
  let failures = ref [] in
  for seed = 1 to seeds do
    let c = config_for kind transform ~crash ~faults seed in
    let r = Harness.Workload.run c in
    let v =
      Lincheck.Durable.check
        ~provenance:(Harness.Workload.describe c)
        (Harness.Objects.spec c.Harness.Workload.kind)
        r.Harness.Workload.history
    in
    if not v.Lincheck.Durable.durable then begin
      failures := seed :: !failures;
      if verbose then
        Fmt.pr "@.seed %d violation:@.%a@." seed Lincheck.Durable.pp_verdict v
    end;
    if stats then begin
      Fmt.pr "seed %d phases:@." seed;
      print_phase "setup" r.Harness.Workload.phases.Harness.Workload.setup;
      print_phase "measured" r.Harness.Workload.phases.Harness.Workload.measured;
      print_phase "recovery" r.Harness.Workload.phases.Harness.Workload.recovery
    end
  done;
  (* one traced re-run per invocation: the first failing seed if any
     (the interesting one), else seed 1 — deterministic either way *)
  (match trace with
  | None -> ()
  | Some file ->
      let seed = match List.rev !failures with s :: _ -> s | [] -> 1 in
      let tracer = Obs.Tracer.create () in
      let c = config_for kind transform ~crash ~faults seed in
      ignore (Harness.Workload.run ~tracer c);
      Obs.Export.write tracer file;
      Fmt.pr "traced seed %d (%d events, %d dropped) to %s@." seed
        (Obs.Tracer.length tracer) (Obs.Tracer.dropped tracer) file);
  let fails = List.length !failures in
  Fmt.pr "%-10s %-16s crash=%-6s%s  %d/%d seeds durably linearizable%s@."
    (Harness.Objects.kind_name kind)
    (Flit.Flit_intf.name transform)
    crash
    (if faults = "none" then "" else " faults=" ^ faults)
    (seeds - fails) seeds
    (if fails > 0 then
       Fmt.str "  (failing seeds: %a)" Fmt.(list ~sep:sp int) (List.rev !failures)
     else "");
  fails

let run object_ transform crash faults seeds matrix verbose stats trace =
  if not (List.mem faults [ "none"; "transient"; "degraded"; "poison" ])
  then begin
    Fmt.epr "unknown fault envelope %S (none/transient/degraded/poison)@."
      faults;
    2
  end
  else if matrix then begin
    (* the full E7 matrix: every object x every transformation x both
       crash regimes; per-seed stats/trace output would drown the table *)
    List.iter
      (fun crash ->
        Fmt.pr "@.=== crash regime: %s ===@." crash;
        List.iter
          (fun t ->
            List.iter
              (fun kind ->
                ignore
                  (run_one kind t ~crash ~faults ~seeds ~verbose
                     ~stats:false ~trace:None))
              Harness.Objects.all_kinds)
          Flit.Registry.all)
      [ "worker"; "home" ];
    Fmt.pr
      "@.expected: durable transformations never fail under worker crashes; \
       Alg 3/3' may fail under home crashes (Finding F1, see DESIGN.md); \
       the noflush control fails under either.@.";
    0
  end
  else
    match (Harness.Objects.kind_of_name object_, Flit.Registry.find transform) with
    | None, _ ->
        Fmt.epr "unknown object %S (register/counter/stack/queue/set/map)@."
          object_;
        2
    | _, None ->
        Fmt.epr "unknown transformation %S; available: %a@." transform
          Fmt.(list ~sep:comma string)
          Flit.Registry.names;
        2
    | Some kind, Some t ->
        if run_one kind t ~crash ~faults ~seeds ~verbose ~stats ~trace > 0
        then 1
        else 0

let object_ =
  Arg.(
    value & opt string "queue"
    & info [ "object" ] ~docv:"OBJ"
        ~doc:"Object kind: register, counter, stack, queue, set, map.")

let transform =
  Arg.(
    value
    & opt string "alg3'-weakest"
    & info [ "transform" ] ~docv:"T"
        ~doc:
          "Transformation: simple, alg2-mstore, alg3-rstore, alg3'-weakest, \
           weakest-lflush, noflush-control.")

let crash =
  Arg.(
    value & opt string "worker"
    & info [ "crash" ] ~docv:"WHO"
        ~doc:"Crash regime: none, worker (compute node), home (data owner).")

let faults =
  Arg.(
    value & opt string "none"
    & info [ "faults" ] ~docv:"ENV"
        ~doc:
          "RAS fault envelope, layered onto the crash regime: none, \
           transient (mild link degradation the retry policy absorbs), \
           degraded (heavy degradation plus a down window), poison \
           (a poisoned line per seed).  Schedules are deterministic in \
           the seed.")

let seeds =
  Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N" ~doc:"Seeds to sweep.")

let matrix =
  Arg.(
    value & flag
    & info [ "matrix" ] ~doc:"Run the full object x transformation matrix.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print violating histories.")

let stats =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print per-seed workload-phase counter diffs (setup / measured \
           ops / recovery) as JSON lines.")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Re-run one seed (the first failing one, else seed 1) with the \
           event tracer attached and write a Chrome/Perfetto trace-event \
           timeline to $(docv) (compact sexp dump if $(docv) ends in \
           .sexp).")

let cmd =
  Cmd.v
    (Cmd.info "flit-run"
       ~doc:"Crash-injected durability runs for transformed objects")
    Term.(
      const run $ object_ $ transform $ crash $ faults $ seeds $ matrix
      $ verbose $ stats $ trace)

let () = exit (Cmd.eval' cmd)
