(* cxl0-fuzz: randomized crash-fault campaigns over the transformed
   objects, with shrinking, a counterexample corpus, and replay.

     dune exec bin/cxl0_fuzz.exe -- --campaign 500 --seed 1
     dune exec bin/cxl0_fuzz.exe -- --campaign 200 --transform flit \
       --max-violations 0
     dune exec bin/cxl0_fuzz.exe -- --replay corpus/noflush-queue-xxxx.sexp

   Each transform is fuzzed inside its guarantee envelope (see
   Fuzz.Gen): violations from the durable transforms are real bugs;
   the noflush control is expected to fail. *)

open Cmdliner

let resolve_transforms names =
  let expand name =
    match name with
    | "flit" | "durable" ->
        Ok (List.map (fun t -> t) Flit.Registry.durable)
    | "all" -> Ok (Flit.Registry.all @ Flit.Registry.extensions)
    | "noflush" -> Ok [ Flit.Registry.noflush ]
    | name -> (
        match Flit.Registry.find name with
        | Some t -> Ok [ t ]
        | None -> Error name)
  in
  let expanded = List.map expand names in
  match
    List.find_map (function Error n -> Some n | Ok _ -> None) expanded
  with
  | Some bad -> Error bad
  | None ->
      (* keep first occurrence order, drop duplicates *)
      let all =
        List.concat_map (function Ok l -> l | Error _ -> []) expanded
      in
      let seen = Hashtbl.create 8 in
      Ok
        (List.filter
           (fun t ->
             let name = Flit.Flit_intf.name t in
             if Hashtbl.mem seen name then false
             else begin
               Hashtbl.add seen name ();
               true
             end)
           all)

let fault_env_of_name = function
  | "none" -> Some Fuzz.Gen.Fault_free
  | "transient" -> Some Fuzz.Gen.Transient_only
  | "degraded" -> Some Fuzz.Gen.Degraded_env
  | "poison" -> Some Fuzz.Gen.Poison_env
  | _ -> None

let restrict_kinds profile = function
  | None -> Ok profile
  | Some name -> (
      match Harness.Objects.kind_of_name name with
      | None -> Error name
      | Some k ->
          if List.mem k profile.Fuzz.Gen.kinds then
            Ok { profile with Fuzz.Gen.kinds = [ k ] }
          else
            (* outside the profile's envelope (e.g. a queue under the
               buffered oracle): honour the request, flag nothing found *)
            Ok { profile with Fuzz.Gen.kinds = [ k ] })

let print_summary (s : Fuzz.Campaign.summary) =
  Fmt.pr "%-16s %5d cells: %5d ok, %3d skipped, %3d violation(s)@."
    s.transform_name s.cells s.ok s.skipped
    (List.length s.violations);
  Fmt.pr "  stats: %s@." (Fabric.Stats.to_json s.stats);
  List.iter
    (fun (v : Fuzz.Campaign.violation) ->
      Fmt.pr "  cell %d: %s@." v.index
        (Harness.Workload.describe v.shrunk);
      Fmt.pr "    shrunk from: %s@."
        (Harness.Workload.describe v.original);
      Fmt.pr "    corpus: %s%s@." v.corpus_path
        (if v.fresh then "" else " (already known)"))
    s.violations

(* Replay always runs traced: a replay exists to explain a counterexample
   and the tracer is free here (one short run).  With --trace FILE the
   timeline is exported; without, the per-primitive latency report is
   printed instead. *)
let replay_file path ~trace =
  match Fuzz.Corpus.load path with
  | Error e ->
      Fmt.epr "cannot replay %s: %a@." path Harness.Codec.pp_error e;
      2
  | Ok c ->
      Fmt.pr "replaying %s@." (Harness.Workload.describe c);
      let tracer = Obs.Tracer.create () in
      let history, verdict, ok = Fuzz.Campaign.replay ~tracer c in
      Fmt.pr "@[<v>history:@,%a@]@." Lincheck.History.pp history;
      Fmt.pr "%s@." verdict;
      (match trace with
      | Some file ->
          Obs.Export.write tracer file;
          Fmt.pr "traced %d event(s) to %s@." (Obs.Tracer.length tracer) file
      | None -> Fmt.pr "%a@." Obs.Report.pp (Obs.Tracer.report tracer));
      if ok then 0 else 1

let run campaign seed jobs transforms kind fault_env corpus_dir
    min_violations max_violations replay trace =
  match replay with
  | Some path -> replay_file path ~trace
  | None -> (
      let jobs =
        match jobs with
        | Some j -> max 1 j
        | None -> Cxl0.Parallel.default_jobs ()
      in
      match
        match fault_env with
        | None -> Ok None
        | Some name -> (
            match fault_env_of_name name with
            | Some e -> Ok (Some e)
            | None -> Error name)
      with
      | Error bad ->
          Fmt.epr
            "unknown fault env %S; known: none, transient, degraded, poison@."
            bad;
          2
      | Ok env_override -> (
      match resolve_transforms transforms with
      | Error bad ->
          Fmt.epr "unknown transform %S; known: %a@." bad
            Fmt.(list ~sep:comma string)
            Flit.Registry.names;
          2
      | Ok transforms -> (
          let profiles =
            List.map
              (fun t ->
                restrict_kinds (Fuzz.Gen.profile_of_transform t) kind)
              transforms
          in
          match
            List.find_map
              (function Error k -> Some k | Ok _ -> None)
              profiles
          with
          | Some bad ->
              Fmt.epr "unknown kind %S@." bad;
              2
          | None ->
              let profiles =
                List.filter_map
                  (function Ok p -> Some p | Error _ -> None)
                  profiles
              in
              let profiles =
                match env_override with
                | None -> profiles
                | Some env ->
                    List.map
                      (fun p -> { p with Fuzz.Gen.fault_env = env })
                      profiles
              in
              Fmt.pr
                "fuzzing %d transform(s), %d cells each, seed %d, %d job(s)@."
                (List.length profiles) campaign seed jobs;
              let summaries =
                List.map
                  (fun p ->
                    let s =
                      Fuzz.Campaign.run ~jobs ~corpus_dir p ~cells:campaign
                        ~seed ()
                    in
                    print_summary s;
                    s)
                  profiles
              in
              let total =
                List.fold_left
                  (fun acc (s : Fuzz.Campaign.summary) ->
                    acc + List.length s.violations)
                  0 summaries
              in
              Fmt.pr "total: %d violation(s)@." total;
              if total < min_violations then begin
                Fmt.epr
                  "FAIL: expected at least %d violation(s), found %d@."
                  min_violations total;
                1
              end
              else
                match max_violations with
                | Some m when total > m ->
                    Fmt.epr
                      "FAIL: expected at most %d violation(s), found %d@." m
                      total;
                    1
                | _ -> 0)))

let campaign =
  Arg.(
    value & opt int 100
    & info [ "campaign"; "n" ] ~docv:"N"
        ~doc:"Number of random configs per transform.")

let seed =
  Arg.(
    value & opt int 1
    & info [ "seed"; "s" ] ~docv:"S"
        ~doc:
          "Campaign seed.  Results (including corpus file names) are \
           fully deterministic in the seed, for every $(b,--jobs) value.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"J"
        ~doc:
          "Worker domains to shard cells over (default: the number of \
           cores).")

let transforms =
  Arg.(
    value
    & opt (list string) [ "noflush" ]
    & info [ "transform"; "t" ] ~docv:"NAMES"
        ~doc:
          "Comma-separated transforms to fuzz; $(b,flit) expands to the \
           four durable FliT algorithms, $(b,all) to everything \
           including the extensions.")

let kind =
  Arg.(
    value
    & opt (some string) None
    & info [ "kind"; "k" ] ~docv:"KIND"
        ~doc:"Restrict sampling to one object kind.")

let fault_env =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-env" ] ~docv:"ENV"
        ~doc:
          "Override every profile's fault envelope: $(b,none) (the \
           default, fault-free), $(b,transient) (mildly degraded links — \
           NACKs and delays the retry policy absorbs), $(b,degraded) \
           (heavy degradation plus a down window), or $(b,poison) \
           (poisoned lines).  Sampled fault schedules ride in each \
           cell's config, so $(b,--replay) reproduces them \
           deterministically.")

let corpus_dir =
  Arg.(
    value & opt string "corpus"
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:"Directory for shrunk counterexamples.")

let min_violations =
  Arg.(
    value & opt int 0
    & info [ "min-violations" ] ~docv:"N"
        ~doc:"Exit non-zero unless at least $(docv) violations are found.")

let max_violations =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-violations" ] ~docv:"N"
        ~doc:"Exit non-zero if more than $(docv) violations are found.")

let replay =
  Arg.(
    value
    & opt (some file) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:
          "Replay one corpus file deterministically, printing the \
           recorded history and verdict, instead of running a campaign.  \
           Replays always run with the event tracer attached: without \
           $(b,--trace) the per-primitive latency report is printed.")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "With $(b,--replay): write the replayed run's timeline to \
           $(docv) as Chrome/Perfetto trace-event JSON (compact sexp \
           dump if $(docv) ends in .sexp).")

let cmd =
  Cmd.v
    (Cmd.info "cxl0-fuzz"
       ~doc:"Randomized crash-fault campaigns with shrinking and replay")
    Term.(
      const run $ campaign $ seed $ jobs $ transforms $ kind $ fault_env
      $ corpus_dir $ min_violations $ max_violations $ replay $ trace)

let () = exit (Cmd.eval' cmd)
