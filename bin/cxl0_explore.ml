(* cxl0-explore: decide feasibility of arbitrary event sequences written
   in the paper's litmus notation, and inspect the reachable states.

     dune exec bin/cxl0_explore.exe -- \
       "LStore_1(x^2,1); RFlush_1(x^2); crash_2; Load_1(x^2,0)"

     dune exec bin/cxl0_explore.exe -- -n 3 --volatile \
       "MStore_1(x^2,1); crash_2" --outcomes-for "x^2"

   Machine count defaults to the highest index mentioned. *)

open Cmdliner

let max_machine_in labels =
  List.fold_left
    (fun acc l ->
      let m = match Cxl0.Label.machine l with Some m -> m | None -> 0 in
      let o =
        match Cxl0.Label.loc l with Some x -> Cxl0.Loc.owner x | None -> 0
      in
      max acc (max m o))
    0 labels

let run events n volatile outcomes_for verbose por sym no_reduction =
  match Cxl0.Parse.program events with
  | Error e ->
      Fmt.epr "parse error: %s@."
        e;
      2
  | Ok labels ->
      let n =
        match n with Some n -> n | None -> max_machine_in labels + 1
      in
      let sys =
        Cxl0.Machine.uniform
          ~persistence:
            (if volatile then Cxl0.Machine.Volatile
             else Cxl0.Machine.Non_volatile)
          n
      in
      Fmt.pr "system: %a@." Cxl0.Machine.pp_system sys;
      Fmt.pr "events: %a@." Cxl0.Litmus.pp_events labels;
      (* Reductions preserve feasibility exactly; symmetry keeps only
         orbit representatives, so it is switched off whenever the
         reachable set itself is printed or queried. *)
      let reduction =
        if no_reduction then Cxl0.Explore.Fast.no_reduction
        else
          {
            Cxl0.Explore.Fast.por;
            sym = (sym && (not verbose) && outcomes_for = None);
          }
      in
      let reach =
        let fast () =
          let locs =
            List.filter_map Cxl0.Label.loc labels
            |> List.sort_uniq Cxl0.Loc.compare
          in
          let ctx = Cxl0.Packed.make sys ~locs in
          let cache = Cxl0.Explore.Fast.create ~reduction ctx in
          let set = Cxl0.Explore.Fast.run cache (Cxl0.Packed.init ctx) labels in
          let st = Cxl0.Explore.Fast.stats cache in
          Fmt.epr
            "reduction: por=%b sym=%b; %d state(s), %d transition(s) explored@."
            reduction.Cxl0.Explore.Fast.por reduction.Cxl0.Explore.Fast.sym
            st.Cxl0.Explore.Fast.states st.Cxl0.Explore.Fast.transitions;
          Cxl0.Explore.Fast.to_set cache set
        in
        try fast ()
        with Cxl0.Packed.Unrepresentable _ ->
          Cxl0.Explore.run sys Cxl0.Config.init labels
      in
      let feasible = not (Cxl0.Config.Set.is_empty reach) in
      Fmt.pr "verdict: %s@."
        (if feasible then "ALLOWED (some execution realises this sequence)"
         else "FORBIDDEN (no execution realises this sequence)");
      if feasible && verbose then begin
        Fmt.pr "reachable final configurations (%d):@."
          (Cxl0.Explore.cardinal reach);
        List.iter
          (fun c -> Fmt.pr "  %a@." Cxl0.Config.pp c)
          (Cxl0.Explore.elements reach)
      end;
      (match outcomes_for with
      | None -> ()
      | Some locstr -> (
          match Cxl0.Parse.loc locstr with
          | Error e -> Fmt.epr "bad --outcomes-for location: %s@." e
          | Ok x ->
              if feasible then
                List.iter
                  (fun i ->
                    Fmt.pr "next Load_%d(%a) could observe: %a@." (i + 1)
                      Cxl0.Loc.pp x
                      Fmt.(list ~sep:(any ", ") int)
                      (Cxl0.Explore.load_outcomes sys reach i x))
                  (Cxl0.Machine.ids sys)));
      if feasible then 0 else 1

let events =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"EVENTS"
        ~doc:
          "Event sequence in litmus notation, e.g. 'LStore_1(x^2,1); \
           crash_2; Load_1(x^2,0)'.  Multiple arguments are concatenated.")

let n =
  Arg.(
    value
    & opt (some int) None
    & info [ "n" ] ~docv:"N"
        ~doc:"Number of machines (default: highest index mentioned).")

let volatile =
  Arg.(value & flag & info [ "volatile" ] ~doc:"All shared memory volatile.")

let outcomes_for =
  Arg.(
    value
    & opt (some string) None
    & info [ "outcomes-for" ] ~docv:"LOC"
        ~doc:"Also print the possible next-load values of LOC per machine.")

let verbose =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Print the reachable configurations.")

let por =
  Arg.(
    value & opt bool true
    & info [ "por" ] ~docv:"BOOL"
        ~doc:"Sleep-set partial-order reduction (default on).")

let sym =
  Arg.(
    value & opt bool true
    & info [ "sym" ] ~docv:"BOOL"
        ~doc:
          "Symmetry (orbit-representative) reduction (default on; \
           automatically disabled when the reachable set is printed or \
           queried, so output is always exact).")

let no_reduction =
  Arg.(
    value & flag
    & info [ "no-reduction" ]
        ~doc:
          "Disable every state-space reduction (equivalent to $(b,--por)=false \
           $(b,--sym)=false).")

let cmd =
  Cmd.v
    (Cmd.info "cxl0-explore"
       ~doc:"Decide feasibility of CXL0 event sequences")
    Term.(
      const run $ events $ n $ volatile $ outcomes_for $ verbose $ por $ sym
      $ no_reduction)

let () = exit (Cmd.eval' cmd)
