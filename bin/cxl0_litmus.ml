(* cxl0-litmus: run the paper's litmus tests (Fig. 4 / Fig. 5) through
   the CXL0 model checker and print the verdict table.

     dune exec bin/cxl0_litmus.exe                 # all paper tests
     dune exec bin/cxl0_litmus.exe -- --only fig4  # just the Fig. 4 table
     dune exec bin/cxl0_litmus.exe -- --name fig4.5 --configs
     dune exec bin/cxl0_litmus.exe -- --name fig4.5 --trace fig4.5.json *)

open Cmdliner

(* Execute the instruction labels of each selected test on the simulated
   fabric with the event tracer attached, and write one timeline.  The
   model checker explores *all* interleavings; this executes *one*
   deterministic schedule (the label order, with forcing flushes), which
   is what a timeline can show.  Locations are allocated on their owner
   at first use; loads execute for their traffic — the fabric's value may
   legitimately differ from the litmus-annotated observation, which
   stands for one nondeterministic outcome. *)
let trace_tests tests file =
  let tracer = Obs.Tracer.create () in
  List.iter
    (fun (t : Cxl0.Litmus.t) ->
      let sys = t.Cxl0.Litmus.system in
      let fab =
        Fabric.create ~seed:0 ~evict_prob:0.0 ~tracer
          (Array.init (Cxl0.Machine.n_machines sys) (fun i ->
               Fabric.machine
                 ~volatile:(Cxl0.Machine.is_volatile sys i)
                 (Printf.sprintf "M%d" (i + 1))))
      in
      let locs = Hashtbl.create 8 in
      let loc_of x =
        let key = (Cxl0.Loc.owner x, Cxl0.Loc.off x) in
        match Hashtbl.find_opt locs key with
        | Some l -> l
        | None ->
            let l = Fabric.alloc fab ~owner:(Cxl0.Loc.owner x) in
            Hashtbl.add locs key l;
            l
      in
      List.iter
        (fun (label : Cxl0.Label.t) ->
          match label with
          | Cxl0.Label.Store (Cxl0.Label.L, i, x, v) ->
              Fabric.lstore fab i (loc_of x) v
          | Cxl0.Label.Store (Cxl0.Label.R, i, x, v) ->
              Fabric.rstore fab i (loc_of x) v
          | Cxl0.Label.Store (Cxl0.Label.M, i, x, v) ->
              Fabric.mstore fab i (loc_of x) v
          | Cxl0.Label.Load (i, x, _observed) ->
              ignore (Fabric.load fab i (loc_of x))
          | Cxl0.Label.Flush (Cxl0.Label.LF, i, x) ->
              Fabric.lflush fab i (loc_of x)
          | Cxl0.Label.Flush (Cxl0.Label.RF, i, x) ->
              Fabric.rflush fab i (loc_of x)
          | Cxl0.Label.Crash i -> Fabric.crash fab i
          | Cxl0.Label.Prop_cache_cache _ | Cxl0.Label.Prop_cache_mem _ ->
              (* silent steps: the fabric propagates internally *)
              ())
        t.Cxl0.Litmus.events)
    tests;
  Obs.Export.write tracer file;
  Fmt.pr "@.wrote %d event(s) from %d test(s) to %s@."
    (Obs.Tracer.length tracer) (List.length tests) file

let run only name configs trace jobs por sym no_reduction =
  let reduction =
    if no_reduction then Cxl0.Explore.Fast.no_reduction
    else { Cxl0.Explore.Fast.por; sym }
  in
  let tests =
    match only with
    | "fig4" -> Cxl0.Litmus.fig4
    | "fig5" -> Cxl0.Litmus.fig5
    | _ -> Cxl0.Litmus.all
  in
  let tests =
    match name with
    | None -> tests
    | Some n -> List.filter (fun t -> t.Cxl0.Litmus.name = n) tests
  in
  if tests = [] then begin
    Fmt.epr "no litmus test matches@.";
    exit 2
  end;
  let jobs =
    match jobs with Some j -> max 1 j | None -> Cxl0.Parallel.default_jobs ()
  in
  Fmt.epr "reduction: por=%b sym=%b@." reduction.Cxl0.Explore.Fast.por
    reduction.Cxl0.Explore.Fast.sym;
  let decided = Cxl0.Litmus.decide_all ~jobs ~reduction tests in
  let all_ok = ref true in
  List.iter
    (fun ((t, got) as row) ->
      Fmt.pr "%a@." Cxl0.Litmus.pp_decided row;
      if t.Cxl0.Litmus.descr <> "" then Fmt.pr "    %s@." t.Cxl0.Litmus.descr;
      if not (Cxl0.Litmus.verdict_equal got t.Cxl0.Litmus.expect) then
        all_ok := false;
      if configs then begin
        let final =
          Cxl0.Explore.run t.Cxl0.Litmus.system Cxl0.Config.init
            t.Cxl0.Litmus.events
        in
        Fmt.pr "    reachable final configurations (%d):@."
          (Cxl0.Explore.cardinal final);
        List.iter
          (fun cfg -> Fmt.pr "      %a@." Cxl0.Config.pp cfg)
          (Cxl0.Explore.elements final)
      end)
    decided;
  (match trace with None -> () | Some file -> trace_tests tests file);
  if !all_ok then begin
    Fmt.pr "@.model and paper agree on all %d tests@." (List.length tests);
    0
  end
  else begin
    Fmt.pr "@.DISAGREEMENT between model and paper@.";
    1
  end

let only =
  Arg.(
    value
    & opt string "all"
    & info [ "only" ] ~docv:"SET" ~doc:"Which set to run: all, fig4, or fig5.")

let test_name =
  Arg.(
    value
    & opt (some string) None
    & info [ "name" ] ~docv:"NAME" ~doc:"Run a single litmus test by name.")

let configs =
  Arg.(
    value & flag
    & info [ "configs" ] ~doc:"Print the reachable final configurations.")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Execute each selected test's instruction sequence on the \
           simulated fabric with the event tracer attached, and write a \
           Chrome/Perfetto trace-event timeline to $(docv) (compact sexp \
           dump if $(docv) ends in .sexp).")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"J"
        ~doc:
          "Worker domains to decide tests in parallel (default: the number \
           of cores).")

let por =
  Arg.(
    value & opt bool true
    & info [ "por" ] ~docv:"BOOL"
        ~doc:
          "Sleep-set partial-order reduction (default on).  Feasibility is \
           preserved exactly; verdicts never depend on it.")

let sym =
  Arg.(
    value & opt bool true
    & info [ "sym" ] ~docv:"BOOL"
        ~doc:
          "Symmetry (orbit-representative) reduction (default on).  \
           Feasibility is preserved exactly; verdicts never depend on it.")

let no_reduction =
  Arg.(
    value & flag
    & info [ "no-reduction" ]
        ~doc:
          "Disable every state-space reduction (equivalent to $(b,--por)=false \
           $(b,--sym)=false): the exploration of PR 1.")

let cmd =
  Cmd.v
    (Cmd.info "cxl0-litmus" ~doc:"Run the paper's CXL0 litmus tests")
    Term.(
      const run $ only $ test_name $ configs $ trace $ jobs $ por $ sym
      $ no_reduction)

let () = exit (Cmd.eval' cmd)
