(* cxl0-litmus: run the paper's litmus tests (Fig. 4 / Fig. 5) through
   the CXL0 model checker and print the verdict table.

     dune exec bin/cxl0_litmus.exe                 # all paper tests
     dune exec bin/cxl0_litmus.exe -- --only fig4  # just the Fig. 4 table
     dune exec bin/cxl0_litmus.exe -- --name fig4.5 --trace *)

open Cmdliner

let run only name trace jobs =
  let tests =
    match only with
    | "fig4" -> Cxl0.Litmus.fig4
    | "fig5" -> Cxl0.Litmus.fig5
    | _ -> Cxl0.Litmus.all
  in
  let tests =
    match name with
    | None -> tests
    | Some n -> List.filter (fun t -> t.Cxl0.Litmus.name = n) tests
  in
  if tests = [] then begin
    Fmt.epr "no litmus test matches@.";
    exit 2
  end;
  let jobs =
    match jobs with Some j -> max 1 j | None -> Cxl0.Parallel.default_jobs ()
  in
  let decided = Cxl0.Litmus.decide_all ~jobs tests in
  let all_ok = ref true in
  List.iter
    (fun ((t, got) as row) ->
      Fmt.pr "%a@." Cxl0.Litmus.pp_decided row;
      if t.Cxl0.Litmus.descr <> "" then Fmt.pr "    %s@." t.Cxl0.Litmus.descr;
      if not (Cxl0.Litmus.verdict_equal got t.Cxl0.Litmus.expect) then
        all_ok := false;
      if trace then begin
        let final =
          Cxl0.Explore.run t.Cxl0.Litmus.system Cxl0.Config.init
            t.Cxl0.Litmus.events
        in
        Fmt.pr "    reachable final configurations (%d):@."
          (Cxl0.Explore.cardinal final);
        List.iter
          (fun cfg -> Fmt.pr "      %a@." Cxl0.Config.pp cfg)
          (Cxl0.Explore.elements final)
      end)
    decided;
  if !all_ok then begin
    Fmt.pr "@.model and paper agree on all %d tests@." (List.length tests);
    0
  end
  else begin
    Fmt.pr "@.DISAGREEMENT between model and paper@.";
    1
  end

let only =
  Arg.(
    value
    & opt string "all"
    & info [ "only" ] ~docv:"SET" ~doc:"Which set to run: all, fig4, or fig5.")

let test_name =
  Arg.(
    value
    & opt (some string) None
    & info [ "name" ] ~docv:"NAME" ~doc:"Run a single litmus test by name.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Print the reachable final configurations.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"J"
        ~doc:
          "Worker domains to decide tests in parallel (default: the number \
           of cores).")

let cmd =
  Cmd.v
    (Cmd.info "cxl0-litmus" ~doc:"Run the paper's CXL0 litmus tests")
    Term.(const run $ only $ test_name $ trace $ jobs)

let () = exit (Cmd.eval' cmd)
