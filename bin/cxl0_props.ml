(* cxl0-props: bounded model checking of Proposition 1 (the eight
   simulation items, proved in Coq by the authors and re-verified here
   by exhaustive state-space exploration).

     dune exec bin/cxl0_props.exe                      # default domain
     dune exec bin/cxl0_props.exe -- -n 3 --locs 2     # bigger domain
     dune exec bin/cxl0_props.exe -- --item 7          # one item *)

open Cmdliner

let run n locs vals item volatile jobs =
  let persistence =
    if volatile then Cxl0.Machine.Volatile else Cxl0.Machine.Non_volatile
  in
  let sys = Cxl0.Machine.uniform ~persistence n in
  let locations =
    List.init locs (fun i -> Cxl0.Loc.v ~owner:(i mod n) (i / n))
  in
  let values = List.init vals Fun.id in
  let items =
    match item with
    | None -> Cxl0.Props.items
    | Some i -> [ Cxl0.Props.item i ]
  in
  let jobs =
    match jobs with Some j -> max 1 j | None -> Cxl0.Parallel.default_jobs ()
  in
  let n_configs =
    Cxl0.Props.enum_configs_count sys ~locs:locations ~vals:values
  in
  Fmt.pr
    "checking %d item(s) over %d machines (%s), %d locations, %d values: %d \
     start configurations, %d job(s)@."
    (List.length items) n
    (if volatile then "volatile" else "non-volatile")
    locs vals n_configs jobs;
  let failures =
    Cxl0.Props.check_exhaustive ~items ~jobs sys ~locs:locations ~vals:values
  in
  List.iter
    (fun it ->
      let f =
        List.filter
          (fun f -> f.Cxl0.Props.item_id = it.Cxl0.Props.id)
          failures
      in
      Fmt.pr "  (%d) %-55s %s@." it.Cxl0.Props.id it.Cxl0.Props.name
        (if f = [] then "HOLDS" else "FAILS"))
    items;
  if failures = [] then begin
    Fmt.pr "@.Proposition 1 verified exhaustively over this domain@.";
    0
  end
  else begin
    List.iter (fun f -> Fmt.pr "%a@." Cxl0.Props.pp_failure f) failures;
    1
  end

let n =
  Arg.(value & opt int 2 & info [ "n" ] ~docv:"N" ~doc:"Number of machines.")

let locs =
  Arg.(
    value & opt int 2
    & info [ "locs" ] ~docv:"L"
        ~doc:"Number of locations (owners assigned round-robin).")

let vals =
  Arg.(
    value & opt int 2
    & info [ "vals" ] ~docv:"V" ~doc:"Number of distinct values (including 0).")

let item =
  Arg.(
    value
    & opt (some int) None
    & info [ "item" ] ~docv:"I" ~doc:"Check a single Proposition 1 item (1-8).")

let volatile =
  Arg.(value & flag & info [ "volatile" ] ~doc:"Use volatile shared memory.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"J"
        ~doc:
          "Worker domains to shard the sweep over (default: the number of \
           cores).  The failure list is identical for every value.")

let cmd =
  Cmd.v
    (Cmd.info "cxl0-props" ~doc:"Exhaustively check Proposition 1")
    Term.(const run $ n $ locs $ vals $ item $ volatile $ jobs)

let () = exit (Cmd.eval' cmd)
