(* cxl0-props: bounded model checking of Proposition 1 (the eight
   simulation items, proved in Coq by the authors and re-verified here
   by exhaustive state-space exploration).

     dune exec bin/cxl0_props.exe                      # default domain
     dune exec bin/cxl0_props.exe -- -n 3 --locs 2     # bigger domain
     dune exec bin/cxl0_props.exe -- --item 7          # one item *)

open Cmdliner

let run n locs vals item volatile jobs por sym no_reduction =
  let reduction =
    if no_reduction then Cxl0.Explore.Fast.no_reduction
    else { Cxl0.Explore.Fast.por; sym }
  in
  let persistence =
    if volatile then Cxl0.Machine.Volatile else Cxl0.Machine.Non_volatile
  in
  let sys = Cxl0.Machine.uniform ~persistence n in
  let locations =
    List.init locs (fun i -> Cxl0.Loc.v ~owner:(i mod n) (i / n))
  in
  let values = List.init vals Fun.id in
  let items =
    match item with
    | None -> Cxl0.Props.items
    | Some i -> [ Cxl0.Props.item i ]
  in
  let jobs =
    match jobs with Some j -> max 1 j | None -> Cxl0.Parallel.default_jobs ()
  in
  let n_configs =
    Cxl0.Props.enum_configs_count sys ~locs:locations ~vals:values
  in
  Fmt.pr
    "checking %d item(s) over %d machines (%s), %d locations, %d values: %d \
     start configurations, %d job(s)@."
    (List.length items) n
    (if volatile then "volatile" else "non-volatile")
    locs vals n_configs jobs;
  let failures, stats =
    Cxl0.Props.check_exhaustive_stats ~items ~jobs ~reduction sys
      ~locs:locations ~vals:values
  in
  (* Stats go to stderr: the stdout verdict table stays byte-comparable
     across reduction settings (the CI smoke diffs it). *)
  Fmt.epr
    "reduction: por=%b sym=%b; %d of %d start configuration(s) checked, %d \
     state(s), %d transition(s)@."
    reduction.Cxl0.Explore.Fast.por reduction.Cxl0.Explore.Fast.sym
    stats.Cxl0.Props.sweep_starts stats.Cxl0.Props.sweep_configs
    stats.Cxl0.Props.sweep_states stats.Cxl0.Props.sweep_transitions;
  List.iter
    (fun it ->
      let f =
        List.filter
          (fun f -> f.Cxl0.Props.item_id = it.Cxl0.Props.id)
          failures
      in
      Fmt.pr "  (%d) %-55s %s@." it.Cxl0.Props.id it.Cxl0.Props.name
        (if f = [] then "HOLDS" else "FAILS"))
    items;
  if failures = [] then begin
    Fmt.pr "@.Proposition 1 verified exhaustively over this domain@.";
    0
  end
  else begin
    List.iter (fun f -> Fmt.pr "%a@." Cxl0.Props.pp_failure f) failures;
    1
  end

let n =
  Arg.(value & opt int 2 & info [ "n" ] ~docv:"N" ~doc:"Number of machines.")

let locs =
  Arg.(
    value & opt int 2
    & info [ "locs" ] ~docv:"L"
        ~doc:"Number of locations (owners assigned round-robin).")

let vals =
  Arg.(
    value & opt int 2
    & info [ "vals" ] ~docv:"V" ~doc:"Number of distinct values (including 0).")

let item =
  Arg.(
    value
    & opt (some int) None
    & info [ "item" ] ~docv:"I" ~doc:"Check a single Proposition 1 item (1-8).")

let volatile =
  Arg.(value & flag & info [ "volatile" ] ~doc:"Use volatile shared memory.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"J"
        ~doc:
          "Worker domains to shard the sweep over (default: the number of \
           cores).  The failure list is identical for every value.")

let por =
  Arg.(
    value & opt bool true
    & info [ "por" ] ~docv:"BOOL"
        ~doc:
          "Sleep-set partial-order reduction (default on).  Never changes \
           the verdicts or the failure list.")

let sym =
  Arg.(
    value & opt bool true
    & info [ "sym" ] ~docv:"BOOL"
        ~doc:
          "Symmetry (orbit-representative) reduction (default on).  Never \
           changes the verdicts or the failure list.")

let no_reduction =
  Arg.(
    value & flag
    & info [ "no-reduction" ]
        ~doc:
          "Disable every state-space reduction (equivalent to $(b,--por)=false \
           $(b,--sym)=false): the exhaustive sweep of PR 1.")

let cmd =
  Cmd.v
    (Cmd.info "cxl0-props" ~doc:"Exhaustively check Proposition 1")
    Term.(
      const run $ n $ locs $ vals $ item $ volatile $ jobs $ por $ sym
      $ no_reduction)

let () = exit (Cmd.eval' cmd)
